//! The recursively grouped multiset, materialized: a tree of groups over
//! the rows of an evaluated spreadsheet.
//!
//! "A recursively grouped set of tuples is a set of tuples with grouping
//! information... Each level of group is a relational group" (Sec. II-A).
//! The root is the spreadsheet itself (level 1, grouped by NULL); each
//! deeper level splits its parent on that level's relative grouping basis.

use ssa_relation::{Relation, Value};
use std::fmt;

/// One group node. The root has an empty `key`; every other node's `key`
/// holds the (attribute, value) pairs of its level's relative basis.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupNode {
    /// 1-based level in the paper's numbering (root = 1).
    pub level: usize,
    /// Relative-basis values identifying this group within its parent.
    pub key: Vec<(String, Value)>,
    /// Sub-groups (empty at the finest level).
    pub children: Vec<GroupNode>,
    /// Indices (into the evaluated relation's rows) of every tuple in
    /// this group, in presentation order.
    pub rows: Vec<usize>,
}

impl GroupNode {
    /// Number of tuples in the group.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Depth-first traversal of this subtree (self included).
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a GroupNode>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// The materialized grouping of an evaluated spreadsheet.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupTree {
    pub root: GroupNode,
}

impl GroupTree {
    /// A flat tree over `n` rows (grouped by NULL only).
    pub fn flat(n: usize) -> GroupTree {
        GroupTree {
            root: GroupNode {
                level: 1,
                key: Vec::new(),
                children: Vec::new(),
                rows: (0..n).collect(),
            },
        }
    }

    /// All groups at a given (1-based) level, in presentation order.
    pub fn groups_at_level(&self, level: usize) -> Vec<&GroupNode> {
        let mut all = Vec::new();
        self.root.walk(&mut all);
        all.into_iter().filter(|g| g.level == level).collect()
    }

    /// The deepest level present.
    pub fn depth(&self) -> usize {
        let mut all = Vec::new();
        self.root.walk(&mut all);
        all.into_iter().map(|g| g.level).max().unwrap_or(1)
    }

    /// The finest-level group containing a row.
    pub fn finest_group_of(&self, row: usize) -> &GroupNode {
        let mut node = &self.root;
        loop {
            match node.children.iter().find(|c| c.rows.contains(&row)) {
                Some(c) => node = c,
                None => return node,
            }
        }
    }

    /// Row indices in presentation order (the root's rows).
    pub fn row_order(&self) -> &[usize] {
        &self.root.rows
    }

    /// Narrow the tree in place after rows were filtered out of the
    /// relation it indexes: `dmap[j]` is row `j`'s new index, or
    /// `u32::MAX` if the row was dropped. Groups left empty disappear
    /// (the root always stays), group keys and nesting are untouched —
    /// exactly what [`build_tree`] over the filtered relation produces,
    /// as long as the filtering did not change any grouping-basis value.
    pub fn narrow(&mut self, dmap: &[u32]) {
        fn rec(node: &mut GroupNode, dmap: &[u32]) {
            let mut w = 0;
            for r in 0..node.rows.len() {
                let m = dmap[node.rows[r]];
                if m != u32::MAX {
                    node.rows[w] = m as usize;
                    w += 1;
                }
            }
            node.rows.truncate(w);
            node.children.retain_mut(|c| {
                rec(c, dmap);
                !c.rows.is_empty()
            });
        }
        rec(&mut self.root, dmap);
    }
}

/// Build a group tree from a relation already sorted in presentation
/// order. `level_bases` holds, per non-root level, the relative-basis
/// attribute names (canonically sorted). Rows with equal basis values must
/// be contiguous — the evaluator guarantees this by sorting first.
pub fn build_tree(data: &Relation, level_bases: &[Vec<String>]) -> GroupTree {
    fn split(
        data: &Relation,
        rows: &[usize],
        level_bases: &[Vec<String>],
        depth: usize, // index into level_bases
        level: usize,
        key: Vec<(String, Value)>,
    ) -> GroupNode {
        let mut node = GroupNode {
            level,
            key,
            children: Vec::new(),
            rows: rows.to_vec(),
        };
        if depth >= level_bases.len() || rows.is_empty() {
            return node;
        }
        let basis = &level_bases[depth];
        let idx: Vec<usize> = basis
            .iter()
            .map(|a| data.schema().index_of(a).expect("basis column exists"))
            .collect();
        // Boundary detection compares values in place; keys are cloned
        // only once per group, not once per row.
        let same_key = |a: usize, b: usize| {
            idx.iter()
                .all(|&i| data.rows()[a].get(i) == data.rows()[b].get(i))
        };
        let mut start = 0;
        while start < rows.len() {
            let mut end = start + 1;
            while end < rows.len() && same_key(rows[start], rows[end]) {
                end += 1;
            }
            // Accumulate the parent's key so a node names its group fully
            // (e.g. L3 key = [Model=Jetta, Year=2005]).
            let mut child_key = node.key.clone();
            child_key.extend(
                basis
                    .iter()
                    .cloned()
                    .zip(idx.iter().map(|&i| *data.rows()[rows[start]].get(i))),
            );
            node.children.push(split(
                data,
                &rows[start..end],
                level_bases,
                depth + 1,
                level + 1,
                child_key,
            ));
            start = end;
        }
        node
    }

    let all: Vec<usize> = (0..data.len()).collect();
    GroupTree {
        root: split(data, &all, level_bases, 0, 1, Vec::new()),
    }
}

impl fmt::Display for GroupTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(node: &GroupNode, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let indent = "  ".repeat(node.level - 1);
            let key = node
                .key
                .iter()
                .map(|(a, v)| format!("{a}={v}"))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                f,
                "{indent}L{} [{}] ({} rows)",
                node.level,
                key,
                node.rows.len()
            )?;
            for c in &node.children {
                rec(c, f)?;
            }
            Ok(())
        }
        rec(&self.root, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_relation::schema::Schema;
    use ssa_relation::tuple;
    use ssa_relation::ValueType::*;

    fn cars_sorted() -> Relation {
        // Sorted: Model DESC (Jetta before Civic), Year ASC inside.
        Relation::with_rows(
            "cars",
            Schema::of(&[("Model", Str), ("Year", Int), ("Price", Int)]),
            vec![
                tuple!["Jetta", 2005, 14500],
                tuple!["Jetta", 2005, 15000],
                tuple!["Jetta", 2006, 17000],
                tuple!["Civic", 2005, 13500],
                tuple!["Civic", 2006, 15000],
                tuple!["Civic", 2006, 16000],
            ],
        )
        .unwrap()
    }

    fn two_level_tree() -> GroupTree {
        build_tree(
            &cars_sorted(),
            &[vec!["Model".to_string()], vec!["Year".to_string()]],
        )
    }

    #[test]
    fn flat_tree_has_all_rows_at_root() {
        let t = GroupTree::flat(4);
        assert_eq!(t.root.rows, vec![0, 1, 2, 3]);
        assert_eq!(t.depth(), 1);
        assert!(t.root.children.is_empty());
    }

    #[test]
    fn builds_recursive_groups() {
        let t = two_level_tree();
        assert_eq!(t.depth(), 3);
        let l2 = t.groups_at_level(2);
        assert_eq!(l2.len(), 2);
        assert_eq!(l2[0].key, vec![("Model".to_string(), "Jetta".into())]);
        assert_eq!(l2[0].rows, vec![0, 1, 2]);
        assert_eq!(l2[1].key, vec![("Model".to_string(), "Civic".into())]);
        let l3 = t.groups_at_level(3);
        assert_eq!(l3.len(), 4); // Jetta05, Jetta06, Civic05, Civic06
        assert_eq!(l3[0].rows, vec![0, 1]);
        assert_eq!(l3[1].rows, vec![2]);
    }

    #[test]
    fn finest_group_of_row() {
        let t = two_level_tree();
        let g = t.finest_group_of(1);
        assert_eq!(g.level, 3);
        assert_eq!(g.rows, vec![0, 1]);
        let g = t.finest_group_of(3);
        assert_eq!(g.key[1], ("Year".to_string(), 2005.into()));
    }

    #[test]
    fn empty_relation_tree() {
        let empty = Relation::new("e", Schema::of(&[("x", Int)]));
        let t = build_tree(&empty, &[vec!["x".to_string()]]);
        assert!(t.root.is_empty());
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn row_order_is_root_rows() {
        let t = two_level_tree();
        assert_eq!(t.row_order(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(t.root.len(), 6);
    }

    #[test]
    fn narrow_matches_fresh_build() {
        let data = cars_sorted();
        let mut t = two_level_tree();
        // Drop rows 1 ("Jetta" 2005) and 3 (the only "Civic" 2005): one
        // finest group shrinks, another disappears entirely.
        let keep = [0usize, 2, 4, 5];
        let mut dmap = vec![u32::MAX; data.len()];
        for (new, &old) in keep.iter().enumerate() {
            dmap[old] = new as u32;
        }
        t.narrow(&dmap);
        let filtered = data.take_rows(&keep.iter().map(|&i| i as u32).collect::<Vec<_>>());
        let fresh = build_tree(
            &filtered,
            &[vec!["Model".to_string()], vec!["Year".to_string()]],
        );
        assert_eq!(t, fresh);
    }

    #[test]
    fn narrow_to_empty_keeps_root() {
        let mut t = two_level_tree();
        t.narrow(&[u32::MAX; 6]);
        assert!(t.root.is_empty());
        assert!(t.root.children.is_empty());
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn display_shows_structure() {
        let text = two_level_tree().to_string();
        assert!(text.contains("L2 [Model=Jetta] (3 rows)"));
        assert!(text.contains("L3 [Model=Civic, Year=2006] (2 rows)"));
    }
}
