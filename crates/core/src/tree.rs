//! The recursively grouped multiset, materialized: a tree of groups over
//! the rows of an evaluated spreadsheet.
//!
//! "A recursively grouped set of tuples is a set of tuples with grouping
//! information... Each level of group is a relational group" (Sec. II-A).
//! The root is the spreadsheet itself (level 1, grouped by NULL); each
//! deeper level splits its parent on that level's relative grouping basis.

use ssa_relation::{Relation, Value};
use std::fmt;

/// A contiguous run `[start, start+len)` of presentation positions.
///
/// A group's members are always consecutive rows of the evaluated
/// relation — the evaluator sorts by the grouping basis before building
/// the tree, and every in-place maintenance operation (narrow,
/// merge-insert) preserves contiguity. Storing the run as a range
/// instead of a per-row index list is what makes splicing one row into
/// the tree O(#groups) rather than O(rows × depth): a splice shifts
/// range starts, not every stored index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRange {
    start: usize,
    len: usize,
}

impl RowRange {
    /// An empty range is canonically `[0, 0)` so trees compare equal
    /// regardless of where their empty groups used to sit.
    pub fn new(start: usize, len: usize) -> RowRange {
        RowRange {
            start: if len == 0 { 0 } else { start },
            len,
        }
    }

    pub fn empty() -> RowRange {
        RowRange::new(0, 0)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First presentation position of the run.
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last presentation position of the run.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    pub fn contains(&self, row: usize) -> bool {
        row >= self.start && row < self.end()
    }

    /// The positions of the run, ascending.
    pub fn iter(&self) -> std::ops::Range<usize> {
        self.start..self.end()
    }

    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// One group node. The root has an empty `key`; every other node's `key`
/// holds the (attribute, value) pairs of its level's relative basis.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupNode {
    /// 1-based level in the paper's numbering (root = 1).
    pub level: usize,
    /// Relative-basis values identifying this group within its parent.
    pub key: Vec<(String, Value)>,
    /// Sub-groups (empty at the finest level).
    pub children: Vec<GroupNode>,
    /// The contiguous run of presentation positions this group covers.
    pub rows: RowRange,
}

impl GroupNode {
    /// Number of tuples in the group.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Depth-first traversal of this subtree (self included).
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a GroupNode>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// The materialized grouping of an evaluated spreadsheet.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupTree {
    pub root: GroupNode,
}

impl GroupTree {
    /// A flat tree over `n` rows (grouped by NULL only).
    pub fn flat(n: usize) -> GroupTree {
        GroupTree {
            root: GroupNode {
                level: 1,
                key: Vec::new(),
                children: Vec::new(),
                rows: RowRange::new(0, n),
            },
        }
    }

    /// All groups at a given (1-based) level, in presentation order.
    pub fn groups_at_level(&self, level: usize) -> Vec<&GroupNode> {
        let mut all = Vec::new();
        self.root.walk(&mut all);
        all.into_iter().filter(|g| g.level == level).collect()
    }

    /// The deepest level present.
    pub fn depth(&self) -> usize {
        let mut all = Vec::new();
        self.root.walk(&mut all);
        all.into_iter().map(|g| g.level).max().unwrap_or(1)
    }

    /// The finest-level group containing a row.
    pub fn finest_group_of(&self, row: usize) -> &GroupNode {
        let mut node = &self.root;
        loop {
            match node.children.iter().find(|c| c.rows.contains(row)) {
                Some(c) => node = c,
                None => return node,
            }
        }
    }

    /// Row indices in presentation order (the root's run).
    pub fn row_order(&self) -> std::ops::Range<usize> {
        self.root.rows.iter()
    }

    /// Narrow the tree in place after rows were filtered out of the
    /// relation it indexes: `dmap[j]` is row `j`'s new index, or
    /// `u32::MAX` if the row was dropped. Groups left empty disappear
    /// (the root always stays), group keys and nesting are untouched —
    /// exactly what [`build_tree`] over the filtered relation produces,
    /// as long as the filtering did not change any grouping-basis value.
    pub fn narrow(&mut self, dmap: &[u32]) {
        fn rec(node: &mut GroupNode, dmap: &[u32]) {
            // The kept rows of a contiguous run stay contiguous after
            // compaction (dmap is monotone on survivors), so the new
            // run is (first survivor's new index, survivor count).
            let mut first = None;
            let mut kept = 0;
            for r in node.rows.iter() {
                let m = dmap[r];
                if m != u32::MAX {
                    if first.is_none() {
                        first = Some(m as usize);
                    }
                    kept += 1;
                }
            }
            node.rows = RowRange::new(first.unwrap_or(0), kept);
            node.children.retain_mut(|c| {
                rec(c, dmap);
                !c.rows.is_empty()
            });
        }
        rec(&mut self.root, dmap);
    }

    /// Insert one row at presentation position `p`: every existing index
    /// `>= p` shifts up by one, then `p` joins the group chain whose
    /// per-level relative keys equal `level_keys` (one `(attribute,
    /// value)` vector per non-root level, coarsest first), creating new
    /// nodes at the sibling position presentation order dictates.
    ///
    /// Produces exactly the tree [`build_tree`] yields over the relation
    /// with the row spliced in at `p`, provided `p` is
    /// presentation-consistent: rows with equal grouping keys stay
    /// contiguous, which the caller guarantees by deriving `p` from the
    /// spec's sort columns (grouping attributes lead the sort).
    pub fn merge_insert(&mut self, p: usize, level_keys: &[Vec<(String, Value)>]) {
        // Ranges entirely at or past `p` slide up by one; ranges
        // containing `p` belong to the insertion chain (groups are
        // contiguous and `p` is presentation-consistent) and grow when
        // `insert` reaches them. O(#groups), not O(rows).
        fn shift(node: &mut GroupNode, p: usize) {
            if !node.rows.is_empty() && node.rows.start() >= p {
                node.rows = RowRange::new(node.rows.start() + 1, node.rows.len());
            }
            for c in &mut node.children {
                shift(c, p);
            }
        }
        /// A fresh single-row chain for the levels below `level`.
        fn chain(
            level: usize,
            key: Vec<(String, Value)>,
            p: usize,
            level_keys: &[Vec<(String, Value)>],
            depth: usize,
        ) -> GroupNode {
            let children = match level_keys.get(depth) {
                Some(rel) => {
                    let mut k = key.clone();
                    k.extend(rel.iter().cloned());
                    vec![chain(level + 1, k, p, level_keys, depth + 1)]
                }
                None => Vec::new(),
            };
            GroupNode {
                level,
                key,
                children,
                rows: RowRange::new(p, 1),
            }
        }
        fn insert(
            node: &mut GroupNode,
            p: usize,
            level_keys: &[Vec<(String, Value)>],
            depth: usize,
        ) {
            // Grow the chain node's run to absorb `p`. A run that was
            // shifted past `p` (it started exactly at `p`) swallows it
            // back by extending downwards.
            node.rows = if node.rows.is_empty() {
                RowRange::new(p, 1)
            } else {
                RowRange::new(node.rows.start().min(p), node.rows.len() + 1)
            };
            let Some(rel_key) = level_keys.get(depth) else {
                return;
            };
            // A child's key accumulates the whole path; its own relative
            // part is the tail.
            let matching = node
                .children
                .iter_mut()
                .find(|c| c.key[c.key.len() - rel_key.len()..] == rel_key[..]);
            if let Some(c) = matching {
                insert(c, p, level_keys, depth + 1);
                return;
            }
            let mut key = node.key.clone();
            key.extend(rel_key.iter().cloned());
            let child = chain(node.level + 1, key, p, level_keys, depth + 1);
            // Siblings hold disjoint contiguous row ranges; the new
            // single-row group slots before the first sibling past `p`.
            let at = node.children.partition_point(|c| c.rows.start() < p);
            node.children.insert(at, child);
        }
        shift(&mut self.root, p);
        insert(&mut self.root, p, level_keys, 0);
    }
}

/// Build a group tree from a relation already sorted in presentation
/// order. `level_bases` holds, per non-root level, the relative-basis
/// attribute names (canonically sorted). Rows with equal basis values must
/// be contiguous — the evaluator guarantees this by sorting first.
pub fn build_tree(data: &Relation, level_bases: &[Vec<String>]) -> GroupTree {
    fn split(
        data: &Relation,
        rows: RowRange,
        level_bases: &[Vec<String>],
        depth: usize, // index into level_bases
        level: usize,
        key: Vec<(String, Value)>,
    ) -> GroupNode {
        let mut node = GroupNode {
            level,
            key,
            children: Vec::new(),
            rows,
        };
        if depth >= level_bases.len() || rows.is_empty() {
            return node;
        }
        let basis = &level_bases[depth];
        let idx: Vec<usize> = basis
            .iter()
            .map(|a| data.schema().index_of(a).expect("basis column exists"))
            .collect();
        // Boundary detection compares values in place; keys are cloned
        // only once per group, not once per row.
        let same_key = |a: usize, b: usize| {
            idx.iter()
                .all(|&i| data.rows()[a].get(i) == data.rows()[b].get(i))
        };
        let mut start = rows.start();
        while start < rows.end() {
            let mut end = start + 1;
            while end < rows.end() && same_key(start, end) {
                end += 1;
            }
            // Accumulate the parent's key so a node names its group fully
            // (e.g. L3 key = [Model=Jetta, Year=2005]).
            let mut child_key = node.key.clone();
            child_key.extend(
                basis
                    .iter()
                    .cloned()
                    .zip(idx.iter().map(|&i| *data.rows()[start].get(i))),
            );
            node.children.push(split(
                data,
                RowRange::new(start, end - start),
                level_bases,
                depth + 1,
                level + 1,
                child_key,
            ));
            start = end;
        }
        node
    }

    GroupTree {
        root: split(
            data,
            RowRange::new(0, data.len()),
            level_bases,
            0,
            1,
            Vec::new(),
        ),
    }
}

impl fmt::Display for GroupTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(node: &GroupNode, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let indent = "  ".repeat(node.level - 1);
            let key = node
                .key
                .iter()
                .map(|(a, v)| format!("{a}={v}"))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                f,
                "{indent}L{} [{}] ({} rows)",
                node.level,
                key,
                node.rows.len()
            )?;
            for c in &node.children {
                rec(c, f)?;
            }
            Ok(())
        }
        rec(&self.root, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_relation::schema::Schema;
    use ssa_relation::tuple;
    use ssa_relation::ValueType::*;

    fn cars_sorted() -> Relation {
        // Sorted: Model DESC (Jetta before Civic), Year ASC inside.
        Relation::with_rows(
            "cars",
            Schema::of(&[("Model", Str), ("Year", Int), ("Price", Int)]),
            vec![
                tuple!["Jetta", 2005, 14500],
                tuple!["Jetta", 2005, 15000],
                tuple!["Jetta", 2006, 17000],
                tuple!["Civic", 2005, 13500],
                tuple!["Civic", 2006, 15000],
                tuple!["Civic", 2006, 16000],
            ],
        )
        .unwrap()
    }

    fn two_level_tree() -> GroupTree {
        build_tree(
            &cars_sorted(),
            &[vec!["Model".to_string()], vec!["Year".to_string()]],
        )
    }

    #[test]
    fn flat_tree_has_all_rows_at_root() {
        let t = GroupTree::flat(4);
        assert_eq!(t.root.rows.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(t.depth(), 1);
        assert!(t.root.children.is_empty());
    }

    #[test]
    fn builds_recursive_groups() {
        let t = two_level_tree();
        assert_eq!(t.depth(), 3);
        let l2 = t.groups_at_level(2);
        assert_eq!(l2.len(), 2);
        assert_eq!(l2[0].key, vec![("Model".to_string(), "Jetta".into())]);
        assert_eq!(l2[0].rows.to_vec(), vec![0, 1, 2]);
        assert_eq!(l2[1].key, vec![("Model".to_string(), "Civic".into())]);
        let l3 = t.groups_at_level(3);
        assert_eq!(l3.len(), 4); // Jetta05, Jetta06, Civic05, Civic06
        assert_eq!(l3[0].rows.to_vec(), vec![0, 1]);
        assert_eq!(l3[1].rows.to_vec(), vec![2]);
    }

    #[test]
    fn finest_group_of_row() {
        let t = two_level_tree();
        let g = t.finest_group_of(1);
        assert_eq!(g.level, 3);
        assert_eq!(g.rows.to_vec(), vec![0, 1]);
        let g = t.finest_group_of(3);
        assert_eq!(g.key[1], ("Year".to_string(), 2005.into()));
    }

    #[test]
    fn empty_relation_tree() {
        let empty = Relation::new("e", Schema::of(&[("x", Int)]));
        let t = build_tree(&empty, &[vec!["x".to_string()]]);
        assert!(t.root.is_empty());
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn row_order_is_root_rows() {
        let t = two_level_tree();
        assert_eq!(t.row_order(), 0..6);
        assert_eq!(t.root.len(), 6);
    }

    #[test]
    fn narrow_matches_fresh_build() {
        let data = cars_sorted();
        let mut t = two_level_tree();
        // Drop rows 1 ("Jetta" 2005) and 3 (the only "Civic" 2005): one
        // finest group shrinks, another disappears entirely.
        let keep = [0usize, 2, 4, 5];
        let mut dmap = vec![u32::MAX; data.len()];
        for (new, &old) in keep.iter().enumerate() {
            dmap[old] = new as u32;
        }
        t.narrow(&dmap);
        let filtered = data.take_rows(&keep.iter().map(|&i| i as u32).collect::<Vec<_>>());
        let fresh = build_tree(
            &filtered,
            &[vec!["Model".to_string()], vec!["Year".to_string()]],
        );
        assert_eq!(t, fresh);
    }

    #[test]
    fn narrow_to_empty_keeps_root() {
        let mut t = two_level_tree();
        t.narrow(&[u32::MAX; 6]);
        assert!(t.root.is_empty());
        assert!(t.root.children.is_empty());
        assert_eq!(t.depth(), 1);
    }

    /// Oracle for merge_insert: splice the row into the sorted relation
    /// at `p`, rebuild from scratch, and compare trees.
    fn assert_merge_matches_fresh(p: usize, row: ssa_relation::Tuple) {
        let bases = [vec!["Model".to_string()], vec!["Year".to_string()]];
        let level_keys: Vec<Vec<(String, Value)>> = bases
            .iter()
            .map(|basis| {
                basis
                    .iter()
                    .map(|a| {
                        let i = cars_sorted().schema().index_of(a).unwrap();
                        (a.clone(), *row.get(i))
                    })
                    .collect()
            })
            .collect();
        let mut t = two_level_tree();
        t.merge_insert(p, &level_keys);
        let mut data = cars_sorted();
        data.rows_mut().insert(p, row);
        assert_eq!(t, build_tree(&data, &bases), "insert at {p}");
    }

    #[test]
    fn merge_insert_into_existing_group() {
        // A third Jetta 2005 lands at position 2, inside the existing
        // finest group.
        assert_merge_matches_fresh(2, tuple!["Jetta", 2005, 14800]);
    }

    #[test]
    fn merge_insert_new_group_between_groups() {
        // Jetta 2007 opens a new finest group between Jetta 2006 and the
        // Civic block; Prius opens a whole new level-2 group between the
        // Jetta and Civic blocks.
        assert_merge_matches_fresh(3, tuple!["Jetta", 2007, 19000]);
        assert_merge_matches_fresh(3, tuple!["Prius", 2006, 21000]);
    }

    #[test]
    fn merge_insert_at_the_ends() {
        assert_merge_matches_fresh(0, tuple!["Jetta", 2004, 12000]);
        assert_merge_matches_fresh(6, tuple!["Civic", 2007, 17500]);
    }

    #[test]
    fn merge_insert_into_flat_tree() {
        let mut t = GroupTree::flat(3);
        t.merge_insert(1, &[]);
        assert_eq!(t.row_order(), 0..4);
        assert!(t.root.children.is_empty());
    }

    #[test]
    fn display_shows_structure() {
        let text = two_level_tree().to_string();
        assert!(text.contains("L2 [Model=Jetta] (3 rows)"));
        assert!(text.contains("L3 [Model=Civic, Year=2006] (2 rows)"));
    }
}
