//! Grouping and ordering specifications — the `G` and `O` of
//! `S = (R, C, G, O)` (Def. 1).
//!
//! `G` is a list of grouping levels. The paper numbers levels from the
//! outermost: level 1 is the spreadsheet itself (grouped by NULL,
//! `g_1 = {NULL}`), and each further level's basis is a superset of the
//! previous. We store each level's *relative* basis (the newly added
//! attributes, `g_{i+1} − g_i`) together with the direction in which its
//! groups are ordered inside their parent — that direction is the paper's
//! `o_i` for `i < |O|`.
//!
//! `O`'s final element — the ordering of tuples inside the finest groups —
//! is [`Spec::finest_order`], a list of (attribute, direction) pairs over
//! attributes not in any grouping basis.

use std::collections::BTreeSet;
use std::fmt;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Asc,
    Desc,
}

impl Direction {
    pub fn flip(self) -> Direction {
        match self {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        }
    }

    pub fn apply(self, ord: std::cmp::Ordering) -> std::cmp::Ordering {
        match self {
            Direction::Asc => ord,
            Direction::Desc => ord.reverse(),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Asc => "ASC",
            Direction::Desc => "DESC",
        })
    }
}

/// One non-root grouping level: the attributes newly added at this level
/// (the *relative grouping basis*) and the direction its groups are
/// ordered by inside the parent group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLevel {
    /// Relative basis, kept sorted for canonical comparison; grouping is
    /// on the *set* of attributes (Def. 3's grouping-basis is a set).
    pub basis: Vec<String>,
    /// Order of this level's groups within their parent (`o_i`).
    pub direction: Direction,
}

impl GroupLevel {
    pub fn new(
        basis: impl IntoIterator<Item = impl Into<String>>,
        direction: Direction,
    ) -> GroupLevel {
        let mut basis: Vec<String> = basis.into_iter().map(Into::into).collect();
        basis.sort();
        basis.dedup();
        GroupLevel { basis, direction }
    }
}

/// One finest-level ordering key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    pub attribute: String,
    pub direction: Direction,
}

impl OrderKey {
    pub fn new(attribute: impl Into<String>, direction: Direction) -> OrderKey {
        OrderKey {
            attribute: attribute.into(),
            direction,
        }
    }

    pub fn asc(attribute: impl Into<String>) -> OrderKey {
        OrderKey::new(attribute, Direction::Asc)
    }

    pub fn desc(attribute: impl Into<String>) -> OrderKey {
        OrderKey::new(attribute, Direction::Desc)
    }
}

/// The complete grouping/ordering specification of a spreadsheet.
///
/// `levels` excludes the root (`g_1 = {NULL}`): an empty `levels` means
/// the sheet is grouped by NULL only. Paper level numbers are therefore
/// `levels.len() + 1` deep; [`Spec::level_count`] returns that number, and
/// level parameters across the crate use the paper's 1-based numbering
/// (level 1 = whole sheet).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    pub levels: Vec<GroupLevel>,
    pub finest_order: Vec<OrderKey>,
}

impl Spec {
    /// Ungrouped, unordered spec — the base spreadsheet's `G^0`, `O^0`
    /// (Def. 2).
    pub fn empty() -> Spec {
        Spec::default()
    }

    /// Total number of group levels in the paper's numbering, counting the
    /// root: an ungrouped sheet has 1 level.
    pub fn level_count(&self) -> usize {
        self.levels.len() + 1
    }

    /// The *absolute* grouping basis of a (1-based) level: the union of
    /// relative bases of levels 2..=level. Level 1 has an empty basis
    /// (`{NULL}`).
    pub fn absolute_basis(&self, level: usize) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for l in self.levels.iter().take(level.saturating_sub(1)) {
            out.extend(l.basis.iter().cloned());
        }
        out
    }

    /// All attributes appearing in any grouping basis.
    pub fn all_grouping_attributes(&self) -> BTreeSet<String> {
        self.absolute_basis(self.level_count())
    }

    /// Whether `attribute` is part of the relative basis of `level`
    /// (1-based; level 1 never has one).
    pub fn in_relative_basis(&self, attribute: &str, level: usize) -> bool {
        level >= 2
            && self
                .levels
                .get(level - 2)
                .is_some_and(|l| l.basis.iter().any(|a| a == attribute))
    }

    /// Attributes ordering the groups *at* the given level inside their
    /// parents — the relative basis of that level (levels ≥ 2).
    pub fn group_order_attributes(&self, level: usize) -> Vec<String> {
        if level >= 2 {
            self.levels
                .get(level - 2)
                .map(|l| l.basis.clone())
                .unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// Truncate grouping to `level` levels (destroying deeper levels), as
    /// ordering does in Def. 4 case 1. Finest-order keys are cleared by the
    /// caller as required.
    pub fn truncate_levels(&mut self, level: usize) {
        let keep = level.saturating_sub(1);
        self.levels.truncate(keep);
    }

    /// Drop a newly-grouped attribute from the finest ordering list
    /// (Def. 3: `o_L = L − grouping-basis`).
    pub fn subtract_from_finest_order(&mut self, basis: &[String]) {
        self.finest_order
            .retain(|k| !basis.iter().any(|b| b == &k.attribute));
    }

    /// The presentation sort keys in order — every grouping level's basis
    /// (outermost first) followed by the finest-order keys — with `true`
    /// marking a descending key. The full pipeline's step-5 sort and the
    /// cache's rank-based reorganize both derive their comparator from
    /// this one list, which is what keeps their tie-breaking identical.
    pub fn sort_columns(&self) -> Vec<(String, bool)> {
        let mut out = Vec::new();
        for level in &self.levels {
            let desc = matches!(level.direction, Direction::Desc);
            for a in &level.basis {
                out.push((a.clone(), desc));
            }
        }
        for k in &self.finest_order {
            out.push((k.attribute.clone(), matches!(k.direction, Direction::Desc)));
        }
        out
    }

    /// Every attribute the spec references (grouping bases + order keys),
    /// used for dependency checks when columns are removed or renamed.
    pub fn referenced_attributes(&self) -> BTreeSet<String> {
        let mut out = self.all_grouping_attributes();
        out.extend(self.finest_order.iter().map(|k| k.attribute.clone()));
        out
    }

    /// Rename an attribute everywhere in the spec.
    pub fn rename_attribute(&mut self, from: &str, to: &str) {
        for l in &mut self.levels {
            for a in &mut l.basis {
                if a == from {
                    *a = to.to_string();
                }
            }
            l.basis.sort();
        }
        for k in &mut self.finest_order {
            if k.attribute == from {
                k.attribute = to.to_string();
            }
        }
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group by [")?;
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{{{}}} {}", l.basis.join(", "), l.direction)?;
        }
        write!(f, "], order by [")?;
        for (i, k) in self.finest_order.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", k.attribute, k.direction)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_spec() -> Spec {
        // Cars grouped by Model (DESC) then Year (ASC), ordered by Price
        // ASC in the finest groups — the running example before Table II.
        Spec {
            levels: vec![
                GroupLevel::new(["Model"], Direction::Desc),
                GroupLevel::new(["Year"], Direction::Asc),
            ],
            finest_order: vec![OrderKey::asc("Price")],
        }
    }

    #[test]
    fn level_count_includes_root() {
        assert_eq!(Spec::empty().level_count(), 1);
        assert_eq!(paper_spec().level_count(), 3);
    }

    #[test]
    fn absolute_basis_accumulates() {
        let s = paper_spec();
        assert!(s.absolute_basis(1).is_empty());
        assert_eq!(
            s.absolute_basis(2).into_iter().collect::<Vec<_>>(),
            vec!["Model".to_string()]
        );
        assert_eq!(
            s.absolute_basis(3).into_iter().collect::<Vec<_>>(),
            vec!["Model".to_string(), "Year".into()]
        );
    }

    #[test]
    fn relative_basis_membership() {
        let s = paper_spec();
        assert!(s.in_relative_basis("Model", 2));
        assert!(!s.in_relative_basis("Model", 3));
        assert!(s.in_relative_basis("Year", 3));
        assert!(!s.in_relative_basis("Price", 3));
        assert!(!s.in_relative_basis("Model", 1));
    }

    #[test]
    fn group_order_attributes_are_relative_basis() {
        let s = paper_spec();
        assert!(s.group_order_attributes(1).is_empty());
        assert_eq!(s.group_order_attributes(2), vec!["Model".to_string()]);
        assert_eq!(s.group_order_attributes(3), vec!["Year".to_string()]);
    }

    #[test]
    fn truncate_destroys_deeper_levels() {
        let mut s = paper_spec();
        s.truncate_levels(2);
        assert_eq!(s.level_count(), 2);
        assert_eq!(s.levels[0].basis, vec!["Model".to_string()]);
        s.truncate_levels(1);
        assert_eq!(s.level_count(), 1);
    }

    #[test]
    fn subtract_from_finest_order_is_list_subtraction() {
        let mut s = paper_spec();
        s.subtract_from_finest_order(&["Price".to_string(), "Condition".into()]);
        assert!(s.finest_order.is_empty());
        let mut s = paper_spec();
        s.subtract_from_finest_order(&["Condition".to_string()]);
        assert_eq!(s.finest_order.len(), 1);
    }

    #[test]
    fn group_level_basis_is_canonical_set() {
        let l = GroupLevel::new(["b", "a", "b"], Direction::Asc);
        assert_eq!(l.basis, vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn rename_attribute_touches_everything() {
        let mut s = paper_spec();
        s.rename_attribute("Model", "Make");
        s.rename_attribute("Price", "Cost");
        assert!(s.in_relative_basis("Make", 2));
        assert_eq!(s.finest_order[0].attribute, "Cost");
    }

    #[test]
    fn referenced_attributes_union() {
        let s = paper_spec();
        let refs = s.referenced_attributes();
        assert_eq!(
            refs.into_iter().collect::<Vec<_>>(),
            vec!["Model".to_string(), "Price".into(), "Year".into()]
        );
    }

    #[test]
    fn display_is_readable() {
        let s = paper_spec();
        let text = s.to_string();
        assert!(text.contains("{Model} DESC"));
        assert!(text.contains("Price ASC"));
    }

    #[test]
    fn direction_flip_and_apply() {
        use std::cmp::Ordering::*;
        assert_eq!(Direction::Asc.flip(), Direction::Desc);
        assert_eq!(Direction::Asc.apply(Less), Less);
        assert_eq!(Direction::Desc.apply(Less), Greater);
        assert_eq!(Direction::Desc.apply(Equal), Equal);
    }
}
