//! # spreadsheet-algebra
//!
//! A faithful implementation of the spreadsheet algebra from
//! *"A Spreadsheet Algebra for a Direct Data Manipulation Query
//! Interface"* (Liu & Jagadish, ICDE 2009).
//!
//! The unit of manipulation is a [`sheet::Spreadsheet`] — a recursively
//! grouped, ordered multiset of tuples `S = (R, C, G, O)` over a base
//! relation. The algebra's operators are methods on it:
//!
//! | Paper | Method | Notes |
//! |---|---|---|
//! | τ grouping (Def. 3) | [`sheet::Spreadsheet::group`] | strict-superset basis; new innermost level |
//! | λ ordering (Def. 4) | [`sheet::Spreadsheet::order`] | three cases, incl. grouping destruction |
//! | σ selection (Def. 5) | [`sheet::Spreadsheet::select`] | predicate retained in query state |
//! | π projection (Def. 6) | [`sheet::Spreadsheet::project_out`] | one column; inverse via [`sheet::Spreadsheet::reinstate`] |
//! | × product (Def. 7) | [`sheet::Spreadsheet::product`] | with a [`sheet::StoredSheet`]; non-commutativity point |
//! | ∪ / − (Defs. 8–9) | [`sheet::Spreadsheet::union`] / [`sheet::Spreadsheet::difference`] | multiset semantics |
//! | ⋈ join (Def. 10) | [`sheet::Spreadsheet::join`] | arbitrary condition |
//! | η aggregation (Def. 11) | [`sheet::Spreadsheet::aggregate`] | computed column, value repeated per group |
//! | θ formula (Def. 12) | [`sheet::Spreadsheet::formula`] | row-wise computed column |
//! | δ DE (Def. 13) | [`sheet::Spreadsheet::dedup`] | duplicates of `R`-tuples |
//! | Save/Open/Rename (III-C) | [`sheet::Spreadsheet::save`] / [`sheet::Spreadsheet::open`] / [`sheet::Spreadsheet::rename`] | |
//!
//! Unary operators edit a modifiable [`state::QueryState`]; the canonical
//! [`eval`] pipeline gives the state one deterministic meaning, which is
//! what makes the unary operators commute (Theorem 2 — see
//! [`precedence`]) and query modification equal to history rewriting
//! (Theorem 3 — see the state-editing methods and [`history::Engine`]).
//!
//! ```
//! use spreadsheet_algebra::prelude::*;
//!
//! let mut sheet = Spreadsheet::over(spreadsheet_algebra::fixtures::used_cars());
//! sheet.group(&["Model"], Direction::Desc).unwrap();
//! sheet.group(&["Model", "Year"], Direction::Asc).unwrap();
//! sheet.order("Price", Direction::Asc, 3).unwrap();
//! let avg = sheet.aggregate(AggFunc::Avg, "Price", 3).unwrap();
//! let id = sheet.select(Expr::col("Price").le(Expr::col(&avg))).unwrap();
//! let view = sheet.view().unwrap();
//! assert_eq!(view.len(), 6);
//! // later: Sam changes his mind — modify the retained predicate
//! sheet.replace_selection(id, Expr::col("Price").lt(Expr::col(&avg))).unwrap();
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod computed;
pub mod delta;
pub mod error;
pub mod eval;
pub mod fixtures;
pub mod history;
pub mod modify;
mod persist;
pub mod plan;
pub mod precedence;
pub mod render;
pub mod replica;
pub mod sheet;
pub mod spec;
pub mod state;
pub mod storage;
pub mod tree;

pub use computed::{ComputedColumn, ComputedDef};
pub use delta::StateDelta;
pub use error::{Result, SheetError};
pub use eval::{evaluate, evaluate_with, Derived, EvalOptions, DEFAULT_PARALLEL_THRESHOLD};
pub use history::{Engine, OpRecord};
pub use modify::RemovalPlan;
pub use plan::{join_with_pushdown, plan_tables, Plan, PlanNode, TablePlan};
pub use precedence::{may_commute, precedes, AlgebraOp, OpSignature};
pub use replica::{
    EventId, EventKey, MergeOutcome, MergePath, OpEvent, Replica, SheetOp, VersionVector,
};
pub use sheet::{Spreadsheet, StoredSheet};
pub use spec::{Direction, GroupLevel, OrderKey, Spec};
pub use state::{QueryState, SelectionEntry};
pub use storage::wal::{DurableSheet, FsyncPolicy, WalWriter};
pub use storage::{open_paged, open_sheet, save_sheet, save_sheet_json, PagedSheet, SheetFile};
pub use tree::{GroupNode, GroupTree, RowRange};

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::history::Engine;
    pub use crate::precedence::AlgebraOp;
    pub use crate::render::{render_markdown, render_table, render_tree};
    pub use crate::sheet::{Spreadsheet, StoredSheet};
    pub use crate::spec::{Direction, OrderKey};
    pub use ssa_relation::{AggFunc, CmpOp, Expr, Relation, Value};
}
