//! The [`Spreadsheet`] — `S = (R, C, G, O)` — and every algebra operator
//! of Sec. III as a method.
//!
//! A `Spreadsheet` holds the base data `R` as of the most recent *point of
//! non-commutativity* (initially the base relation, Def. 2) plus the
//! modifiable [`QueryState`] accumulated since. Unary operators edit the
//! state; binary operators evaluate the current sheet, combine it with a
//! stored sheet, and start a fresh state epoch (selections and DE are
//! consumed; computed columns, projections, grouping and ordering carry
//! over and keep auto-updating).

use crate::computed::{compute_ranks, ComputedColumn, ComputedDef};
use crate::delta::{classify, ContentKey, StateDelta};
use crate::error::{Result, SheetError};
use crate::eval::{
    compute_column_values, evaluate_full_with, evaluate_with, filter_relation, visible_columns,
    Derived, EvalOptions,
};
use crate::spec::{Direction, GroupLevel, OrderKey, Spec};
use crate::state::{volatile_columns, QueryState};
use crate::tree::build_tree;
use ssa_relation::schema::Column;
use ssa_relation::{ops, AggFunc, Expr, Relation, RelationError, Tuple, Value, ValueType};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A snapshot of a spreadsheet produced by the **Save** operator
/// (Sec. III-C). Binary operators take a stored sheet as their right
/// operand; **Open** turns one back into a live [`Spreadsheet`].
///
/// The snapshot freezes the sheet's *data*: selections and duplicate
/// elimination are applied, computed columns are dropped from the data
/// (they "do not participate", Sec. III-B) but their definitions are kept
/// so re-opening restores them.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSheet {
    pub name: String,
    /// Evaluated `R` — all base columns (hidden ones included), filtered
    /// and deduplicated as of the save.
    pub relation: Relation,
    /// The surviving state: computed definitions, projections, grouping
    /// and ordering. Selections/DE are cleared (already applied).
    pub state: QueryState,
}

impl StoredSheet {
    /// Serialize to JSON (the reproduction's stand-in for the prototype's
    /// saved sheets).
    pub fn to_json(&self) -> Result<String> {
        ssa_relation::fault_check!("persist.save");
        Ok(crate::persist::stored_sheet_to_json(self))
    }

    pub fn from_json(text: &str) -> Result<StoredSheet> {
        crate::persist::stored_sheet_from_json(text)
    }

    /// Serialize to the binary columnar format (DESIGN.md §16): the
    /// default on-disk representation, readable lazily via
    /// [`crate::storage::PagedSheet`].
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        ssa_relation::fault_check!("persist.save");
        crate::storage::encode(self)
    }

    /// Decode a binary columnar image (eagerly — every column loads).
    pub fn from_binary(bytes: Vec<u8>) -> Result<StoredSheet> {
        crate::storage::SheetFile::from_bytes(bytes)?.materialize()
    }

    /// Write this sheet to `path` in the binary format via atomic
    /// temp-file + rename; a failed save never clobbers the old file.
    pub fn save_path(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        crate::storage::save_sheet(self, path)
    }

    /// Read a sheet from `path`, auto-detecting binary vs JSON from the
    /// leading magic bytes.
    pub fn open_path(path: impl AsRef<std::path::Path>) -> Result<StoredSheet> {
        crate::storage::open_sheet(path)
    }
}

/// Cached group membership of the canonical rows under one grouping
/// basis: `gid[i]` is the (dense, first-encounter) group id of canonical
/// row `i`. Valid as long as the basis columns' values are unchanged —
/// which, across the incremental paths, holds exactly when the basis
/// contains no volatile (aggregate-dependent) column: base values never
/// change without dropping the whole cache, and non-volatile computed
/// values are never rewritten in place. Narrowing filters `gid` by the
/// surviving rows (groups may become empty; ids are not re-densified).
#[derive(Debug, Clone)]
struct GroupCache {
    gid: Vec<u32>,
    groups: u32,
}

/// A per-group running fold for one aggregate — the streaming-append
/// counterpart of [`AggFunc::apply_refs`]. Values are pushed in ascending
/// canonical order, so the float folds (SUM/AVG) reproduce the evaluator's
/// left-to-right accumulation bit for bit; that is exactly why the append
/// paths only consult an accumulator when the new row lands at the
/// canonical tail, and why every retraction (delete, update) discards
/// them: a fold cannot un-push exactly.
///
/// `CountDistinct` and `StdDev` have no accumulator (`new` returns
/// `None`) — their groups recompute outright.
#[derive(Debug, Clone)]
enum Accum {
    Count(i64),
    CountNonNull(i64),
    Sum {
        int: i64,
        float: f64,
        all_int: bool,
        /// `apply_refs` reports integer overflow only when *every* input
        /// is an integer; a later float input switches the whole group to
        /// the float fold. Remember the overflow instead of failing the
        /// push, and fail at read time iff the group is still all-int.
        overflow: bool,
        non_null: i64,
    },
    Avg {
        sum: f64,
        count: i64,
    },
    Min(Value),
    Max(Value),
}

impl Accum {
    fn new(func: AggFunc) -> Option<Accum> {
        Some(match func {
            AggFunc::Count => Accum::Count(0),
            AggFunc::CountNonNull => Accum::CountNonNull(0),
            AggFunc::Sum => Accum::Sum {
                int: 0,
                float: 0.0,
                all_int: true,
                overflow: false,
                non_null: 0,
            },
            AggFunc::Avg => Accum::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => Accum::Min(Value::Null),
            AggFunc::Max => Accum::Max(Value::Null),
            AggFunc::CountDistinct | AggFunc::StdDev => return None,
        })
    }

    fn non_numeric(func: &str, v: &Value) -> SheetError {
        SheetError::Relation(RelationError::BadAggregate {
            context: format!("{func} on non-numeric value `{v}`"),
        })
    }

    fn push(&mut self, v: &Value) -> Result<()> {
        match self {
            Accum::Count(n) => *n += 1,
            Accum::CountNonNull(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accum::Sum {
                int,
                float,
                all_int,
                overflow,
                non_null,
            } => {
                if !v.is_null() {
                    let f = v.as_f64().ok_or_else(|| Accum::non_numeric("SUM", v))?;
                    *float += f;
                    *non_null += 1;
                    if let Value::Int(i) = v {
                        if *all_int {
                            match int.checked_add(*i) {
                                Some(s) => *int = s,
                                None => *overflow = true,
                            }
                        }
                    } else {
                        *all_int = false;
                    }
                }
            }
            Accum::Avg { sum, count } => {
                if !v.is_null() {
                    *sum += v.as_f64().ok_or_else(|| Accum::non_numeric("AVG", v))?;
                    *count += 1;
                }
            }
            Accum::Min(m) => {
                if !v.is_null() && (m.is_null() || v < m) {
                    *m = *v;
                }
            }
            Accum::Max(m) => {
                if !v.is_null() && (m.is_null() || v > m) {
                    *m = *v;
                }
            }
        }
        Ok(())
    }

    fn value(&self) -> Result<Value> {
        Ok(match self {
            Accum::Count(n) | Accum::CountNonNull(n) => Value::Int(*n),
            Accum::Sum { non_null: 0, .. } => Value::Null,
            Accum::Sum {
                int,
                all_int: true,
                overflow,
                ..
            } => {
                if *overflow {
                    return Err(SheetError::Relation(RelationError::BadAggregate {
                        context: "integer overflow in SUM".into(),
                    }));
                }
                Value::Int(*int)
            }
            Accum::Sum { float, .. } => Value::Float(*float),
            Accum::Avg { count: 0, .. } => Value::Null,
            Accum::Avg { sum, count } => Value::Float(*sum / *count as f64),
            Accum::Min(m) | Accum::Max(m) => *m,
        })
    }
}

/// Resolve the spec's presentation sort columns against the canonical
/// schema: `(column index, descending)` per key, outermost first.
fn resolve_sort_idx(spec: &Spec, canonical: &Relation) -> Result<Vec<(usize, bool)>> {
    spec.sort_columns()
        .into_iter()
        .map(|(name, desc)| Ok((canonical.schema().index_of(&name)?, desc)))
        .collect()
}

/// Presentation positions (`derived` row indices) of the group whose
/// basis columns hold the `target` values. When the basis is a prefix of
/// the presentation sort — the base-patch gate guarantees it — the group
/// is one contiguous run found by two binary searches; otherwise fall
/// back to a scan (defensive, O(n)).
fn group_positions(
    canonical: &Relation,
    perm: &[u32],
    sort_idx: &[(usize, bool)],
    target: &[(usize, Value)],
) -> Vec<usize> {
    let rows = canonical.rows();
    let want: BTreeSet<usize> = target.iter().map(|&(i, _)| i).collect();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut prefix_len = 0;
    for &(i, _) in sort_idx {
        if seen == want {
            break;
        }
        if !want.contains(&i) {
            break;
        }
        seen.insert(i);
        prefix_len += 1;
    }
    if seen != want {
        // Not a sort prefix: scan every presentation slot for the key.
        return (0..perm.len())
            .filter(|&j| {
                let r = &rows[perm[j] as usize];
                target.iter().all(|(i, v)| r.get(*i) == v)
            })
            .collect();
    }
    let value_of = |i: usize| -> Value {
        target
            .iter()
            .find(|&&(ti, _)| ti == i)
            .map(|&(_, v)| v)
            .unwrap_or(Value::Null)
    };
    let cmp_to_target = |c: u32| -> std::cmp::Ordering {
        for &(i, desc) in &sort_idx[..prefix_len] {
            let ord = rows[c as usize].get(i).cmp(&value_of(i));
            let ord = if desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    let lo = perm.partition_point(|&c| cmp_to_target(c) == std::cmp::Ordering::Less);
    let hi = perm.partition_point(|&c| cmp_to_target(c) != std::cmp::Ordering::Greater);
    (lo..hi).collect()
}

/// Re-aggregate one group from scratch and write its value onto every
/// member row (canonical and derived). Inputs are gathered in ascending
/// canonical order — the same order the evaluator feeds `apply_refs` —
/// so float results are bit-identical. An emptied group has no rows to
/// receive a value and is skipped, exactly as in a fresh evaluation.
#[allow(clippy::too_many_arguments)]
fn recompute_group(
    canonical: &mut Relation,
    derived: &mut Relation,
    perm: &[u32],
    sort_idx: &[(usize, bool)],
    agg_idx: usize,
    in_idx: usize,
    func: AggFunc,
    target: &[(usize, Value)],
) -> Result<()> {
    let js = group_positions(canonical, perm, sort_idx, target);
    if js.is_empty() {
        return Ok(());
    }
    let mut ids: Vec<u32> = js.iter().map(|&j| perm[j]).collect();
    ids.sort_unstable();
    let v = {
        let rows = canonical.rows();
        let inputs: Vec<&Value> = ids.iter().map(|&c| rows[c as usize].get(in_idx)).collect();
        func.apply_refs(&inputs)?
    };
    for &j in &js {
        derived.rows_mut()[j].set(agg_idx, v);
    }
    for &c in &ids {
        canonical.rows_mut()[c as usize].set(agg_idx, v);
    }
    Ok(())
}

/// Retype column `idx` on both schemas by unifying its surviving values —
/// what `result_schema` does in a fresh evaluation. Needed whenever a
/// patch *replaces* values (retraction, group-value change): unlike an
/// append, replacement can narrow the unify, so unify-up is not enough.
fn re_unify_column(canonical: &mut Relation, derived: &mut Relation, idx: usize) {
    let ty = canonical
        .rows()
        .iter()
        .fold(ValueType::Null, |t, r| t.unify(r.get(idx).value_type()));
    canonical.schema_mut().set_column_type(idx, ty);
    derived.schema_mut().set_column_type(idx, ty);
}

#[derive(Debug, Clone)]
struct CacheEntry {
    derived: Derived,
    /// The evaluated multiset in canonical (base-insertion) order — what
    /// the reorganize fast path re-sorts, so tie-breaking is identical to
    /// a from-scratch evaluation.
    canonical: Relation,
    content: ContentKey,
    spec: Spec,
    /// Per-column dense ranks of `canonical`'s rows (rank preserves
    /// `Value` order, ties share a rank), keyed by the column's position
    /// in the canonical schema. Computed lazily the first time a column
    /// participates in a reorganize, then reused: repeated
    /// regrouping/reordering over the same content sorts `u32` keys
    /// instead of re-comparing `Value`s. Narrowing filters the vectors in
    /// place (a subsequence of order-preserving keys is still
    /// order-preserving, just no longer dense — only comparisons matter).
    sort_keys: BTreeMap<usize, Vec<u32>>,
    /// Presentation permutation: `derived.data` row `j` is `canonical`
    /// row `perm[j]`. Produced by the index-vector engine and maintained
    /// by every delta path, it lets narrowing filter the derived rows in
    /// place instead of re-sorting. `None` for naive-engine caches,
    /// which never take the incremental paths.
    perm: Option<Vec<u32>>,
    /// Group-membership caches keyed by the resolved basis column
    /// positions in the canonical schema. Built lazily the first time a
    /// narrowing refresh re-aggregates over a basis of non-volatile
    /// columns, then filtered across narrows like `sort_keys` — repeated
    /// tightening re-buckets rows by cached `u32` ids instead of
    /// re-grouping `Value` keys through a `BTreeMap`.
    groups: BTreeMap<Vec<usize>, GroupCache>,
    /// Dense columnar copies of canonical columns that feed grouped
    /// re-aggregation, keyed by schema position. The row store keeps one
    /// heap allocation per tuple, so re-reading an aggregate's input
    /// column through the tuples costs a pointer chase per row; these
    /// buffers turn that into a sequential scan. Cached only for
    /// non-volatile columns (whose values the incremental paths never
    /// rewrite) and narrowed by `keep` like the rank caches.
    col_vals: BTreeMap<usize, Vec<Value>>,
    /// Row provenance: canonical row `i` came from base row
    /// `base_ids[i]` (strictly ascending — selection preserves base
    /// order). This is what lets base-data deltas address the cache:
    /// appends binary-search their insertion point, deletes translate
    /// base row ids into canonical `keep` sets. `None` for naive-engine
    /// caches, alongside `perm`.
    base_ids: Option<Vec<u32>>,
    /// Per-group running aggregate folds keyed by aggregate column
    /// position, then by the group's basis values in spec order. Built
    /// lazily on the first tail append and advanced per append; any
    /// retraction clears them (see [`Accum`]).
    agg_accums: BTreeMap<usize, BTreeMap<Vec<Value>, Accum>>,
}

impl CacheEntry {
    fn new(
        derived: Derived,
        canonical: Relation,
        content: ContentKey,
        spec: Spec,
        prov: Option<(Vec<u32>, Vec<u32>)>,
    ) -> CacheEntry {
        let (perm, base_ids) = match prov {
            Some((perm, base_ids)) => (Some(perm), Some(base_ids)),
            None => (None, None),
        };
        CacheEntry {
            derived,
            canonical,
            content,
            spec,
            sort_keys: BTreeMap::new(),
            perm,
            groups: BTreeMap::new(),
            col_vals: BTreeMap::new(),
            base_ids,
            agg_accums: BTreeMap::new(),
        }
    }

    /// Re-aggregate `func(column)` over the cached canonical rows using
    /// (and lazily building) the group-membership cache for `basis`,
    /// writing the refreshed values straight into column `idx` of both
    /// the canonical and the derived relation (through `perm`) and
    /// setting both schemas' static type — one fused pass, no
    /// intermediate column materialization.
    ///
    /// Only sound when no basis column is volatile — the caller gates on
    /// that — since cached group ids assume basis values are unchanged.
    /// Per-group input order is ascending canonical order, matching the
    /// full evaluator's, so float aggregation is bit-identical; the
    /// per-group type unify equals the full evaluator's per-row one
    /// because every row carries exactly its group's value.
    ///
    /// `input_stable` says the input column itself is non-volatile, i.e.
    /// its values are never rewritten while this cache entry lives —
    /// only then may the input be read from (and cached in) the dense
    /// columnar buffer.
    fn refresh_aggregate_grouped(
        &mut self,
        idx: usize,
        func: AggFunc,
        column: &str,
        basis: &[String],
        perm: &[u32],
        input_stable: bool,
    ) -> Result<()> {
        let schema = self.canonical.schema();
        let basis_idx: Vec<usize> = basis
            .iter()
            .map(|b| schema.index_of(b))
            .collect::<ssa_relation::Result<_>>()?;
        let col_idx = schema.index_of(column)?;
        let CacheEntry {
            groups,
            canonical,
            derived,
            col_vals,
            ..
        } = self;
        let rows = canonical.rows();
        let gc = groups.entry(basis_idx).or_insert_with_key(|basis_idx| {
            if basis_idx.is_empty() {
                // Level 1: the whole sheet is one group.
                GroupCache {
                    gid: vec![0; rows.len()],
                    groups: 1,
                }
            } else {
                let mut ids: BTreeMap<Vec<&Value>, u32> = BTreeMap::new();
                let mut gid = Vec::with_capacity(rows.len());
                for t in rows {
                    let key: Vec<&Value> = basis_idx.iter().map(|&i| t.get(i)).collect();
                    let next = ids.len() as u32;
                    gid.push(*ids.entry(key).or_insert(next));
                }
                GroupCache {
                    gid,
                    groups: ids.len() as u32,
                }
            }
        });
        // Bucket the input values by cached group id (pre-sized, one
        // pass), aggregate each non-empty group, and fan the group value
        // back out per row. Groups emptied by narrowing are skipped —
        // they have no rows to receive a value, exactly as in a fresh
        // evaluation where they no longer exist. When the input column
        // is stable its values are read from the dense columnar buffer
        // (built on first use, narrowed thereafter), skipping the
        // per-tuple pointer chase through the row store.
        let dense: Option<&[Value]> = if input_stable {
            Some(
                col_vals
                    .entry(col_idx)
                    .or_insert_with(|| rows.iter().map(|t| *t.get(col_idx)).collect()),
            )
        } else {
            None
        };
        let mut counts = vec![0u32; gc.groups as usize];
        for &g in &gc.gid {
            counts[g as usize] += 1;
        }
        let mut inputs: Vec<Vec<&Value>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        match dense {
            Some(vals) => {
                for (&g, v) in gc.gid.iter().zip(vals) {
                    inputs[g as usize].push(v);
                }
            }
            None => {
                for (r, &g) in gc.gid.iter().enumerate() {
                    inputs[g as usize].push(rows[r].get(col_idx));
                }
            }
        }
        let mut per_group = vec![Value::Null; gc.groups as usize];
        let mut ty = ValueType::Null;
        for (g, inp) in inputs.iter().enumerate() {
            if !inp.is_empty() {
                let v = func.apply_refs(inp)?;
                ty = ty.unify(v.value_type());
                per_group[g] = v;
            }
        }
        drop(inputs);
        for (r, row) in canonical.rows_mut().iter_mut().enumerate() {
            row.set(idx, per_group[gc.gid[r] as usize]);
        }
        for (j, row) in derived.data.rows_mut().iter_mut().enumerate() {
            row.set(idx, per_group[gc.gid[perm[j] as usize] as usize]);
        }
        canonical.schema_mut().set_column_type(idx, ty);
        derived.data.schema_mut().set_column_type(idx, ty);
        Ok(())
    }

    /// Order-preserving sort keys for the canonical column at `idx`
    /// (equal values share a key), cached. Keyed by schema position and
    /// resolved through the entry API: a hit walks the map once and
    /// allocates nothing.
    fn ranks_for(&mut self, idx: usize) -> &[u32] {
        let CacheEntry {
            sort_keys,
            canonical,
            ..
        } = self;
        sort_keys.entry(idx).or_insert_with(|| {
            let rows = canonical.rows();
            // Fast path for string columns: keys come straight from the
            // interner's lexicographic rank snapshot — one O(1) lookup
            // per row, no row sort, no string comparisons. Same symbol ⇒
            // same key and rank order ⇒ lexicographic order, so the keys
            // satisfy the same contract as dense ranks.
            let all_str =
                !rows.is_empty() && rows.iter().all(|t| matches!(t.get(idx), Value::Str(_)));
            if all_str {
                let snap = ssa_relation::intern::rank_snapshot();
                rows.iter()
                    .map(|t| match t.get(idx) {
                        Value::Str(s) => snap[s.id() as usize],
                        _ => unreachable!("checked all-string above"),
                    })
                    .collect()
            } else {
                let mut order: Vec<u32> = (0..rows.len() as u32).collect();
                order.sort_by(|&a, &b| rows[a as usize].get(idx).cmp(rows[b as usize].get(idx)));
                let mut ranks = vec![0u32; rows.len()];
                let mut rank = 0u32;
                for (i, &row) in order.iter().enumerate() {
                    if i > 0 && rows[row as usize].get(idx) != rows[order[i - 1] as usize].get(idx)
                    {
                        rank += 1;
                    }
                    ranks[row as usize] = rank;
                }
                ranks
            }
        })
    }

    /// Reorganize the cached canonical data under `spec` using the
    /// rank cache: a stable index sort over `u32` rank keys, then one
    /// row gather. Produces exactly what a full evaluation's
    /// presentation sort would (dense ranks preserve `Value` order and
    /// stability preserves canonical tie-breaking).
    fn reorganize(&mut self, spec: &Spec, visible: Vec<String>) -> Result<()> {
        let columns: Vec<(usize, bool)> = spec
            .sort_columns()
            .into_iter()
            .map(|(name, desc)| {
                self.canonical
                    .schema()
                    .index_of(&name)
                    .map(|idx| (idx, desc))
            })
            .collect::<ssa_relation::Result<_>>()?;
        for &(idx, _) in &columns {
            self.ranks_for(idx);
        }
        let keys: Vec<(&Vec<u32>, bool)> = columns
            .iter()
            .map(|(idx, desc)| (&self.sort_keys[idx], *desc))
            .collect();
        let mut perm: Vec<u32> = (0..self.canonical.len() as u32).collect();
        perm.sort_by(|&a, &b| {
            for (ranks, desc) in &keys {
                let ord = ranks[a as usize].cmp(&ranks[b as usize]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let data = self.canonical.take_rows(&perm);
        let level_bases: Vec<Vec<String>> = spec.levels.iter().map(|l| l.basis.clone()).collect();
        let tree = build_tree(&data, &level_bases);
        self.derived = Derived {
            data,
            tree,
            visible,
        };
        self.spec = spec.clone();
        self.perm = Some(perm);
        Ok(())
    }

    /// Narrow the cached multiset (DESIGN.md §10): keep only the rows
    /// satisfying every delta predicate, refresh the volatile
    /// (aggregate-dependent) computed columns over the smaller multiset,
    /// and re-unify every computed column's static type so the schema
    /// matches what a fresh evaluation would produce.
    ///
    /// Both the canonical and the derived relations are filtered *in
    /// place* through the presentation permutation — no re-sort, no rank
    /// recomputation, no row clones — so the derived view stays current
    /// under an unchanged spec (the caller reorganizes only when the
    /// spec moved too). Requires `self.perm`.
    fn narrow(&mut self, predicates: &[Expr], state: &QueryState, threshold: usize) -> Result<()> {
        ssa_relation::fault_check!("delta.narrow");
        // Same rewrite the full evaluator's fused filter pass applies:
        // cheap and selective predicates first (the narrowed predicates
        // all commute — they tighten one already-applied conjunction).
        let ordered = crate::plan::reorder_predicates(predicates, Some(&self.canonical));
        let Some(predicate) = Expr::conjoin(ordered) else {
            return Ok(());
        };
        let keep = filter_relation(&self.canonical, &predicate, threshold)?;
        if keep.len() == self.canonical.len() {
            // The tightened predicates removed nothing: rows, aggregates,
            // order, tree and types all stand exactly as cached.
            return Ok(());
        }
        self.narrow_to(&keep, state, threshold)
    }

    /// The retraction core shared by predicate narrowing and base-row
    /// deletion: keep exactly the canonical rows listed (ascending) in
    /// `keep`, filter every derived structure through the permutation,
    /// and refresh the volatile columns over the smaller multiset.
    fn narrow_to(&mut self, keep: &[u32], state: &QueryState, threshold: usize) -> Result<()> {
        // Retraction invalidates the running folds: a fold cannot
        // un-push exactly (float SUM/AVG) and Min/Max cannot retract at
        // all — the classification rule DESIGN.md §14 documents.
        self.agg_accums.clear();
        // Row provenance narrows by the same filter: a surviving
        // canonical row keeps its base id, and ascending order survives
        // an order-preserving filter.
        if let Some(ids) = self.base_ids.as_mut() {
            *ids = keep.iter().map(|&i| ids[i as usize]).collect();
        }
        // Old canonical index → new (dense) index, u32::MAX for dropped.
        let mut remap = vec![u32::MAX; self.canonical.len()];
        for (new_idx, &old_idx) in keep.iter().enumerate() {
            remap[old_idx as usize] = new_idx as u32;
        }
        // A filtered subsequence of order-preserving keys is still
        // order-preserving, so the rank cache survives.
        for ranks in self.sort_keys.values_mut() {
            *ranks = keep.iter().map(|&i| ranks[i as usize]).collect();
        }
        // Group membership of a surviving row is unchanged, so the group
        // caches narrow the same way (some groups may become empty).
        for gc in self.groups.values_mut() {
            gc.gid = keep.iter().map(|&i| gc.gid[i as usize]).collect();
        }
        // A surviving row's stable-column values are unchanged too, so
        // the columnar buffers narrow by the same index filter.
        for vals in self.col_vals.values_mut() {
            *vals = keep.iter().map(|&i| vals[i as usize]).collect();
        }
        // The derived rows are the same multiset in presentation order:
        // drop the same rows there (in place) and renumber the
        // permutation, preserving the presentation order of survivors.
        // Both retains walk their whole relation and free the dropped
        // tuples, so above the parallel threshold they run on two
        // threads — they touch disjoint fields and share only `remap`.
        let old_perm = self.perm.take().ok_or_else(|| {
            // The caller gates this path on `perm.is_some()`; degrade to
            // the full-evaluation fallback rather than panic if not.
            SheetError::Internal {
                detail: "narrow requires the presentation permutation".to_string(),
            }
        })?;
        let mut perm = Vec::with_capacity(keep.len());
        // Old derived (presentation) index → new, u32::MAX for dropped —
        // this is what lets the group tree be narrowed in place below.
        let mut dmap = vec![u32::MAX; old_perm.len()];
        {
            let canonical = &mut self.canonical;
            let derived = &mut self.derived.data;
            let remap = &remap;
            let retain_derived =
                |perm: &mut Vec<u32>, dmap: &mut Vec<u32>, derived: &mut Relation| {
                    derived.retain_rows(|j| {
                        let mapped = remap[old_perm[j] as usize];
                        if mapped != u32::MAX {
                            dmap[j] = perm.len() as u32;
                            perm.push(mapped);
                        }
                        mapped != u32::MAX
                    });
                };
            if canonical.len() >= threshold {
                std::thread::scope(|s| {
                    let h = s.spawn(|| canonical.retain_rows(|i| remap[i] != u32::MAX));
                    retain_derived(&mut perm, &mut dmap, derived);
                    ssa_relation::par::join_all(vec![h])
                })?;
            } else {
                canonical.retain_rows(|i| remap[i] != u32::MAX);
                retain_derived(&mut perm, &mut dmap, derived);
            }
        }

        // Refresh aggregates (and their transitive dependents) over the
        // narrowed multiset — step 4's automatic update, confined to the
        // columns it can actually change. Dependency order via fixpoint:
        // a volatile column is refreshed once its volatile inputs are.
        let volatile = volatile_columns(&state.computed);
        let mut refreshed: Vec<usize> = Vec::new();
        let mut grouped: BTreeSet<usize> = BTreeSet::new();
        let mut done: BTreeSet<&str> = BTreeSet::new();
        while done.len() < volatile.len() {
            let mut progressed = false;
            for col in &state.computed {
                if !volatile.contains(&col.name) || done.contains(col.name.as_str()) {
                    continue;
                }
                if col
                    .def
                    .dependencies()
                    .iter()
                    .any(|d| volatile.contains(d) && !done.contains(d.as_str()))
                {
                    continue;
                }
                let idx = self.canonical.schema().index_of(&col.name)?;
                // Aggregates over a stable basis re-bucket through the
                // group cache, writing canonical and derived (and both
                // static types) in one fused pass; everything else
                // (formulas, aggregates whose basis was itself just
                // refreshed) goes through the general single-column
                // evaluator and is mirrored/re-typed below.
                match &col.def {
                    ComputedDef::Aggregate {
                        func,
                        column,
                        basis,
                        ..
                    } if basis.iter().all(|b| !volatile.contains(b)) => {
                        let input_stable = !volatile.contains(column);
                        self.refresh_aggregate_grouped(
                            idx,
                            *func,
                            column,
                            basis,
                            &perm,
                            input_stable,
                        )?;
                        grouped.insert(idx);
                    }
                    _ => {
                        let (values, _) = compute_column_values(&self.canonical, col, threshold)?;
                        for (row, v) in self.canonical.rows_mut().iter_mut().zip(&values) {
                            row.set(idx, *v);
                        }
                        refreshed.push(idx);
                    }
                }
                self.sort_keys.remove(&idx);
                self.col_vals.remove(&idx);
                done.insert(&col.name);
                progressed = true;
            }
            if !progressed {
                // Unreachable for validated state (no cycles); bail to
                // the caller's full-evaluation fallback rather than spin.
                return Err(SheetError::UnknownColumn {
                    name: "cyclic computed dependencies".to_string(),
                });
            }
        }
        // Mirror the refreshed values into the derived rows through the
        // permutation (derived row j is canonical row perm[j]).
        for &idx in &refreshed {
            let canonical_rows = self.canonical.rows();
            for (j, row) in self.derived.data.rows_mut().iter_mut().enumerate() {
                row.set(idx, *canonical_rows[perm[j] as usize].get(idx));
            }
        }
        // `result_schema` types each computed column by unifying its
        // surviving values; match it so `Derived` equality holds. The
        // group-refreshed columns were already typed from their per-group
        // values (every row holds its group's value, so that unify is the
        // same), sparing a full column scan each.
        for col in &state.computed {
            let idx = self.canonical.schema().index_of(&col.name)?;
            if grouped.contains(&idx) {
                continue;
            }
            let ty = self
                .canonical
                .rows()
                .iter()
                .fold(ValueType::Null, |t, r| t.unify(r.get(idx).value_type()));
            self.canonical.schema_mut().set_column_type(idx, ty);
            self.derived.data.schema_mut().set_column_type(idx, ty);
        }
        // Rows vanished: narrow the group tree in place. Grouping-basis
        // values are unchanged (a volatile basis or order column forces
        // the caller to reorganize, which rebuilds the tree from
        // scratch), so filtering each node's row list by `dmap` yields
        // exactly what `build_tree` over the filtered relation would.
        self.derived.tree.narrow(&dmap);
        self.perm = Some(perm);
        Ok(())
    }

    /// Append one computed column (classified rank-last, so plain append
    /// reproduces the canonical rank-order layout) by materializing it
    /// over the cached rows. With the presentation permutation at hand
    /// the derived relation gets the same column in place — rows, order
    /// and tree are untouched by a new column; without it the caller
    /// must reorganize to rebuild the derived view.
    fn append_computed(&mut self, col: &ComputedColumn, threshold: usize) -> Result<()> {
        ssa_relation::fault_check!("delta.append");
        let (values, ty) = compute_column_values(&self.canonical, col, threshold)?;
        if let Some(perm) = &self.perm {
            self.derived
                .data
                .add_column(Column::new(col.name.clone(), ty), |j, _| {
                    values[perm[j] as usize]
                })?;
        }
        let mut it = values.into_iter();
        self.canonical
            .add_column(Column::new(col.name.clone(), ty), |_, _| {
                // invariant: `compute_column_values` yields one value per
                // canonical row, in order.
                it.next().unwrap_or(Value::Null)
            })?;
        Ok(())
    }

    /// Drop one computed column from the cached canonical and derived
    /// relations in place. Rows, presentation order and the group tree
    /// are untouched (the operators refuse to remove a column anything
    /// depends on), so no reorganize is needed.
    fn remove_computed(&mut self, name: &str) -> Result<()> {
        ssa_relation::fault_check!("delta.remove");
        let idx = self.canonical.schema().index_of(name)?;
        self.canonical.drop_column(name)?;
        self.derived.data.drop_column(name)?;
        let old = std::mem::take(&mut self.sort_keys);
        self.sort_keys = old
            .into_iter()
            .filter_map(|(i, v)| match i.cmp(&idx) {
                std::cmp::Ordering::Less => Some((i, v)),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some((i - 1, v)),
            })
            .collect();
        // Columnar buffers are keyed by schema position too.
        let old_vals = std::mem::take(&mut self.col_vals);
        self.col_vals = old_vals
            .into_iter()
            .filter_map(|(i, v)| match i.cmp(&idx) {
                std::cmp::Ordering::Less => Some((i, v)),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some((i - 1, v)),
            })
            .collect();
        // Group caches are keyed by basis positions: drop any over the
        // removed column (defensive — dependents block its removal) and
        // shift positions past it.
        let old_groups = std::mem::take(&mut self.groups);
        self.groups = old_groups
            .into_iter()
            .filter_map(|(key, gc)| {
                if key.contains(&idx) {
                    return None;
                }
                let key = key
                    .into_iter()
                    .map(|i| if i > idx { i - 1 } else { i })
                    .collect();
                Some((key, gc))
            })
            .collect();
        // Accumulators are keyed by schema position too; dropping a
        // column shifts every later one, so just rebuild lazily.
        self.agg_accums.clear();
        Ok(())
    }

    /// Run `base` row `base_idx` through the cached query state and, if
    /// it survives every selection, splice it into the canonical
    /// relation, the presentation permutation, the derived rows and the
    /// group tree — the streaming-append tentpole. Returns the canonical
    /// insertion position, or `None` for a filtered-out row.
    ///
    /// Grouped aggregates advance per-group running folds when the row
    /// lands at the canonical tail (ascending base ids make that the
    /// common case); an out-of-order splice or a fold-less aggregate
    /// (CountDistinct/StdDev) recomputes just the affected group.
    fn insert_base_row(
        &mut self,
        base: &Relation,
        base_idx: u32,
        state: &QueryState,
    ) -> Result<Option<usize>> {
        let internal = |detail: &str| SheetError::Internal {
            detail: detail.to_string(),
        };
        let ids = self
            .base_ids
            .as_ref()
            .ok_or_else(|| internal("insert_base_row requires row provenance"))?;
        let cpos = ids.partition_point(|&b| b < base_idx);

        // Build a one-row relation with the canonical schema and run the
        // query state over it rank by rank: formulas of rank r are
        // computed only if the row survived every selection of rank < r,
        // exactly matching the full pipeline's fused ordering (a row the
        // first selection kills never evaluates later formulas, so e.g.
        // a division by zero there must not fail the append).
        let mut vals: Vec<Value> = base.rows()[base_idx as usize].values().to_vec();
        vals.resize(self.canonical.schema().len(), Value::Null);
        let mut mini = Relation::with_rows(
            "patch-row",
            self.canonical.schema().clone(),
            vec![Tuple::new(vals)],
        )?;
        let base_columns: BTreeSet<String> = base
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let ranks = compute_ranks(&base_columns, &state.computed)
            .ok_or_else(|| internal("cached state has unresolved computed dependencies"))?;
        let sel_rank = |pred: &Expr| -> usize {
            pred.columns()
                .iter()
                .filter_map(|c| {
                    state
                        .computed
                        .iter()
                        .position(|col| &col.name == c)
                        .map(|i| ranks[i])
                })
                .max()
                .unwrap_or(0)
        };
        let max_rank = ranks.iter().copied().max().unwrap_or(0);
        for rank in 0..=max_rank {
            if rank > 0 {
                for (ci, col) in state.computed.iter().enumerate() {
                    if ranks[ci] != rank {
                        continue;
                    }
                    let v = match &col.def {
                        // Aggregates are group-level; their value for the
                        // new row is patched after insertion. Selections
                        // never read them on this path (gated by
                        // `base_patch_block`), so Null is fine here.
                        ComputedDef::Aggregate { .. } => Value::Null,
                        ComputedDef::Formula { .. } => {
                            let (values, _) = compute_column_values(&mini, col, usize::MAX)?;
                            values.into_iter().next().unwrap_or(Value::Null)
                        }
                    };
                    mini.set_value(0, &col.name, v)?;
                }
            }
            let rank_preds: Vec<Expr> = state
                .selections
                .iter()
                .filter(|s| sel_rank(&s.predicate) == rank)
                .map(|s| s.predicate.clone())
                .collect();
            if let Some(pred) = Expr::conjoin(rank_preds) {
                if filter_relation(&mini, &pred, usize::MAX)?.is_empty() {
                    return Ok(None);
                }
            }
        }
        let row = mini.rows()[0].clone();

        // Appending can only widen a computed column's unified type
        // (unify is monotone), so unify-up matches what a fresh
        // evaluation's `result_schema` would produce over the grown
        // multiset. Base columns keep the base schema's static type
        // verbatim — `result_schema` copies them unexamined.
        let base_len = base.schema().len();
        for (idx, col) in self
            .canonical
            .schema()
            .columns()
            .to_vec()
            .iter()
            .enumerate()
        {
            if idx < base_len {
                continue;
            }
            let ty = col.ty.unify(row.get(idx).value_type());
            if ty != col.ty {
                self.canonical.schema_mut().set_column_type(idx, ty);
                self.derived.data.schema_mut().set_column_type(idx, ty);
            }
        }

        let CacheEntry {
            canonical,
            derived,
            perm,
            base_ids,
            spec,
            sort_keys,
            groups,
            col_vals,
            agg_accums,
            content: _,
        } = self;
        let perm = perm
            .as_mut()
            .ok_or_else(|| internal("insert_base_row requires the presentation permutation"))?;
        let base_ids = base_ids
            .as_mut()
            .ok_or_else(|| internal("insert_base_row requires row provenance"))?;
        canonical.rows_mut().insert(cpos, row);
        base_ids.insert(cpos, base_idx);
        // Renumber canonical positions at or after the splice point. A
        // live-feed append lands at the canonical tail (base order is
        // insertion order), where no position shifts — keep that hot
        // path free of the O(n) scan.
        if cpos + 1 < canonical.len() {
            for c in perm.iter_mut() {
                if *c as usize >= cpos {
                    *c += 1;
                }
            }
        }
        // Presentation position: first slot whose row sorts after the
        // new one; equal keys tie-break by canonical position, matching
        // the stable sort of a fresh evaluation.
        let sort_idx = resolve_sort_idx(spec, canonical)?;
        let rows = canonical.rows();
        let new_row = &rows[cpos];
        let p = perm.partition_point(|&c| {
            let existing = &rows[c as usize];
            for &(i, desc) in &sort_idx {
                let ord = existing.get(i).cmp(new_row.get(i));
                let ord = if desc { ord.reverse() } else { ord };
                match ord {
                    std::cmp::Ordering::Less => return true,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Equal => {}
                }
            }
            (c as usize) < cpos
        });
        let new_row = new_row.clone();
        perm.insert(p, cpos as u32);
        derived.data.rows_mut().insert(p, new_row);
        // Merge the new presentation row into the group tree: per level,
        // the absolute basis values identify (or create) its chain.
        let level_keys: Vec<Vec<(String, Value)>> = spec
            .levels
            .iter()
            .map(|l| {
                l.basis
                    .iter()
                    .map(|b| {
                        Ok((
                            b.clone(),
                            *canonical.rows()[cpos].get(canonical.schema().index_of(b)?),
                        ))
                    })
                    .collect::<Result<Vec<_>>>()
            })
            .collect::<Result<Vec<_>>>()?;
        derived.tree.merge_insert(p, &level_keys);
        // Rank/group/columnar caches assume a fixed row population;
        // splicing a row mid-sequence would renumber them all, so drop
        // and rebuild lazily. The running folds survive — they are keyed
        // by basis *values*, not positions.
        sort_keys.clear();
        groups.clear();
        col_vals.clear();

        // Patch the grouped aggregates.
        let at_tail = cpos + 1 == canonical.len();
        for col in &state.computed {
            let ComputedDef::Aggregate {
                func,
                column,
                basis,
                ..
            } = &col.def
            else {
                continue;
            };
            let idx = canonical.schema().index_of(&col.name)?;
            let in_idx = canonical.schema().index_of(column)?;
            let target: Vec<(usize, Value)> = basis
                .iter()
                .map(|b| {
                    let bi = canonical.schema().index_of(b)?;
                    Ok((bi, *canonical.rows()[cpos].get(bi)))
                })
                .collect::<Result<Vec<_>>>()?;
            let use_accum = at_tail && Accum::new(*func).is_some();
            if !use_accum {
                agg_accums.remove(&idx);
                recompute_group(
                    canonical,
                    &mut derived.data,
                    perm,
                    &sort_idx,
                    idx,
                    in_idx,
                    *func,
                    &target,
                )?;
                re_unify_column(canonical, &mut derived.data, idx);
                continue;
            }
            // Lazily seed the fold map from the pre-append rows (in
            // ascending canonical order, so the folds equal the cached
            // group values), then advance the new row's group.
            let map = match agg_accums.entry(idx) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(slot) => {
                    let mut map: BTreeMap<Vec<Value>, Accum> = BTreeMap::new();
                    let basis_idx: Vec<usize> = target.iter().map(|&(i, _)| i).collect();
                    for r in &canonical.rows()[..cpos] {
                        let key: Vec<Value> = basis_idx.iter().map(|&i| *r.get(i)).collect();
                        let acc = map
                            .entry(key)
                            .or_insert_with(|| Accum::new(*func).unwrap_or(Accum::Count(0)));
                        acc.push(r.get(in_idx))?;
                    }
                    slot.insert(map)
                }
            };
            let key: Vec<Value> = target.iter().map(|&(_, v)| v).collect();
            let input = *canonical.rows()[cpos].get(in_idx);
            match map.entry(key) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let acc = e.get_mut();
                    let old = acc.value()?;
                    acc.push(&input)?;
                    let new = acc.value()?;
                    if old == new {
                        // Untouched group value: only the new row needs
                        // the cell (it is at the tail, so derived row p
                        // and canonical row cpos are the only writes).
                        canonical.rows_mut()[cpos].set(idx, new);
                        derived.data.rows_mut()[p].set(idx, new);
                    } else {
                        for j in group_positions(canonical, perm, &sort_idx, &target) {
                            derived.data.rows_mut()[j].set(idx, new);
                            canonical.rows_mut()[perm[j] as usize].set(idx, new);
                        }
                        if old.value_type() != new.value_type() {
                            re_unify_column(canonical, &mut derived.data, idx);
                        }
                    }
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    let acc = e.insert(
                        Accum::new(*func).ok_or_else(|| internal("fold-less accumulator"))?,
                    );
                    acc.push(&input)?;
                    let v = acc.value()?;
                    canonical.rows_mut()[cpos].set(idx, v);
                    derived.data.rows_mut()[p].set(idx, v);
                    let ty = canonical.schema().columns()[idx].ty.unify(v.value_type());
                    canonical.schema_mut().set_column_type(idx, ty);
                    derived.data.schema_mut().set_column_type(idx, ty);
                }
            }
        }
        Ok(Some(cpos))
    }

    /// Remove the base rows listed (ascending) in `removed` from the
    /// cached evaluation: translate base ids to surviving canonical
    /// indices, narrow every structure through the shared retraction
    /// core, and renumber the provenance for the shrunken base.
    fn delete_base_rows(
        &mut self,
        removed: &[u32],
        state: &QueryState,
        threshold: usize,
    ) -> Result<()> {
        let ids = self.base_ids.as_ref().ok_or_else(|| SheetError::Internal {
            detail: "delete_base_rows requires row provenance".to_string(),
        })?;
        let mut keep: Vec<u32> = Vec::with_capacity(ids.len());
        let mut renumbered: Vec<u32> = Vec::with_capacity(ids.len());
        let mut k = 0usize; // removed ids seen so far (all < current b)
        for (i, &b) in ids.iter().enumerate() {
            while k < removed.len() && removed[k] < b {
                k += 1;
            }
            if k < removed.len() && removed[k] == b {
                continue; // this cached row is being deleted
            }
            keep.push(i as u32);
            renumbered.push(b - k as u32);
        }
        if keep.len() != ids.len() {
            self.narrow_to(&keep, state, threshold)?;
        }
        self.base_ids = Some(renumbered);
        Ok(())
    }

    /// Drop one canonical row (by canonical index) from every cached
    /// structure — the retraction half of update-as-delete+append. Group
    /// values are NOT refreshed here; the caller recomputes affected
    /// groups after the re-insert.
    fn remove_canonical_row(&mut self, cpos: usize) -> Result<()> {
        let internal = |detail: &str| SheetError::Internal {
            detail: detail.to_string(),
        };
        let CacheEntry {
            canonical,
            derived,
            perm,
            base_ids,
            sort_keys,
            groups,
            col_vals,
            agg_accums,
            ..
        } = self;
        let perm = perm
            .as_mut()
            .ok_or_else(|| internal("remove_canonical_row requires the permutation"))?;
        let base_ids = base_ids
            .as_mut()
            .ok_or_else(|| internal("remove_canonical_row requires row provenance"))?;
        let j = perm
            .iter()
            .position(|&c| c as usize == cpos)
            .ok_or_else(|| internal("canonical row missing from permutation"))?;
        let old_len = perm.len();
        perm.remove(j);
        for c in perm.iter_mut() {
            if *c as usize > cpos {
                *c -= 1;
            }
        }
        base_ids.remove(cpos);
        canonical.remove_rows_at(&[cpos as u32])?;
        derived.data.remove_rows_at(&[j as u32])?;
        let dmap: Vec<u32> = (0..old_len)
            .map(|oj| match oj.cmp(&j) {
                std::cmp::Ordering::Less => oj as u32,
                std::cmp::Ordering::Equal => u32::MAX,
                std::cmp::Ordering::Greater => (oj - 1) as u32,
            })
            .collect();
        derived.tree.narrow(&dmap);
        sort_keys.clear();
        groups.clear();
        col_vals.clear();
        agg_accums.clear();
        Ok(())
    }

    /// In-place cell update (Tier A): the updated column drives no
    /// selection, formula, grouping basis or sort key — the caller
    /// checked — so only the cell itself and any aggregate *reading*
    /// the column change.
    fn update_base_cell(
        &mut self,
        base: &Relation,
        row: u32,
        column: &str,
        state: &QueryState,
    ) -> Result<()> {
        let internal = |detail: &str| SheetError::Internal {
            detail: detail.to_string(),
        };
        let col_idx = self.canonical.schema().index_of(column)?;
        let ids = self
            .base_ids
            .as_ref()
            .ok_or_else(|| internal("update_base_cell requires row provenance"))?;
        let Ok(cpos) = ids.binary_search(&row) else {
            // The row was filtered out of the cached evaluation; with no
            // selection reading this column (Tier A) it stays out.
            return Ok(());
        };
        let sort_idx = resolve_sort_idx(&self.spec, &self.canonical)?;
        let newv = *base.value_at(row as usize, column)?;
        {
            let CacheEntry {
                canonical,
                derived,
                perm,
                sort_keys,
                groups,
                col_vals,
                ..
            } = self;
            let perm = perm
                .as_ref()
                .ok_or_else(|| internal("update_base_cell requires the permutation"))?;
            let j = perm
                .iter()
                .position(|&c| c as usize == cpos)
                .ok_or_else(|| internal("canonical row missing from permutation"))?;
            canonical.rows_mut()[cpos].set(col_idx, newv);
            derived.data.rows_mut()[j].set(col_idx, newv);
            sort_keys.remove(&col_idx);
            col_vals.remove(&col_idx);
            groups.retain(|key, _| !key.contains(&col_idx));
            // No schema retype: `column` is a base column, and
            // `result_schema` copies base static types unexamined.
        }
        for col in &state.computed {
            let ComputedDef::Aggregate {
                func,
                column: in_col,
                basis,
                ..
            } = &col.def
            else {
                continue;
            };
            if in_col != column {
                continue;
            }
            let idx = self.canonical.schema().index_of(&col.name)?;
            let in_idx = col_idx;
            let target: Vec<(usize, Value)> = basis
                .iter()
                .map(|b| {
                    let bi = self.canonical.schema().index_of(b)?;
                    Ok((bi, *self.canonical.rows()[cpos].get(bi)))
                })
                .collect::<Result<Vec<_>>>()?;
            let CacheEntry {
                canonical,
                derived,
                perm,
                sort_keys,
                col_vals,
                agg_accums,
                ..
            } = self;
            let perm = perm
                .as_ref()
                .ok_or_else(|| internal("update_base_cell requires the permutation"))?;
            agg_accums.remove(&idx);
            recompute_group(
                canonical,
                &mut derived.data,
                perm,
                &sort_idx,
                idx,
                in_idx,
                *func,
                &target,
            )?;
            re_unify_column(canonical, &mut derived.data, idx);
            sort_keys.remove(&idx);
            col_vals.remove(&idx);
        }
        Ok(())
    }
}

/// A live spreadsheet.
///
/// The base data `R` is held behind an [`Arc`]: many sheets (concurrent
/// server sessions, undo snapshots, published reader snapshots) share one
/// immutable copy, and the base-editing operators copy-on-write via
/// [`Arc::make_mut`] — an unshared sheet mutates in place at the §14
/// streaming costs, a shared one pays one relation clone and leaves every
/// other holder's snapshot untouched.
#[derive(Debug, Clone)]
pub struct Spreadsheet {
    name: String,
    base: Arc<Relation>,
    state: QueryState,
    /// Cached evaluation; reorganized in place when only `G`/`O`/`C`
    /// changed, recomputed when the content-determining state changed,
    /// dropped when the base data changed.
    cache: Option<CacheEntry>,
    /// Whether the reorganize fast path is enabled (on by default; the
    /// `reorganize` bench ablates it).
    fast_reorganize: bool,
    /// Whether the delta-aware incremental paths (narrow / append /
    /// remove / projection-toggle) are enabled (on by default; the
    /// `incremental` bench ablates it).
    incremental: bool,
    /// How the state relates to the cached evaluation — recorded by
    /// `invalidate` on every state edit, re-derived by `view`.
    last_delta: StateDelta,
    /// Engine selection and parallelism knobs passed to every
    /// evaluation.
    eval_opts: EvalOptions,
    /// How many points of non-commutativity this sheet has passed.
    epoch: u64,
    /// Monotone count of committed base-data mutations (appends, deletes,
    /// cell updates, epoch transitions, renames) — the §12 transactional
    /// machinery extended into a *data version*: every committed change to
    /// `R` bumps it exactly once, every rolled-back change leaves it
    /// untouched. Snapshot hosts (the `ssa-server` crate) use it as the
    /// published snapshot version.
    version: u64,
    next_formula_id: u64,
    /// Cache self-audit (DESIGN.md §12): when on, every incremental
    /// cache patch in `view` is re-checked against a from-scratch
    /// evaluation. On by default in debug builds, off in release.
    audit: bool,
}

/// The delta recorded before any cache exists or after the base changed.
const FULL_NO_CACHE: StateDelta = StateDelta::Full {
    reason: "no cached evaluation",
};

/// How `apply_cached` brought (or failed to bring) the cache current —
/// `view` audits the `Patched` outcomes when the self-audit is on.
enum CachePath {
    /// The cached entry was already current; nothing was touched.
    Hit,
    /// An incremental patch (named, for the audit report) made it current.
    Patched(&'static str),
    /// No sound shortcut exists; the caller must evaluate from scratch.
    Miss,
}

impl Spreadsheet {
    /// The base spreadsheet `S^0(R, C^0, ∅, ∅)` over a relation (Def. 2).
    pub fn over(relation: Relation) -> Spreadsheet {
        Self::over_shared(Arc::new(relation))
    }

    /// The base spreadsheet over an already-shared relation: the sheet
    /// holds the `Arc` without copying the data, so forking a session off
    /// a published snapshot is O(1) regardless of row count. The paper's
    /// Sec. V split made concrete: the immutable base `R` is shared, the
    /// per-session query state is private.
    pub fn over_shared(relation: Arc<Relation>) -> Spreadsheet {
        Spreadsheet {
            name: relation.name().to_string(),
            base: relation,
            state: QueryState::new(),
            cache: None,
            fast_reorganize: true,
            incremental: true,
            last_delta: FULL_NO_CACHE,
            eval_opts: EvalOptions::default(),
            epoch: 0,
            version: 0,
            next_formula_id: 1,
            audit: cfg!(debug_assertions),
        }
    }

    /// Enable/disable the fast reorganize path (for ablation benches; the
    /// result is identical either way, which `view` tests pin).
    pub fn set_fast_reorganize(&mut self, on: bool) {
        self.fast_reorganize = on;
    }

    /// Enable/disable the delta-aware incremental cache paths (for
    /// ablation benches and the differential tests; the result is
    /// identical either way, which `view` tests pin).
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    /// Enable/disable the cache self-audit (on by default under
    /// `cfg(debug_assertions)`): after every incremental cache patch,
    /// [`Self::view`] recomputes the sheet from scratch and fails with
    /// [`SheetError::AuditDivergence`] if the patched cache differs.
    /// Roughly doubles the cost of every patched `view` — a testing and
    /// debugging tool, not a production setting.
    pub fn set_audit(&mut self, on: bool) {
        self.audit = on;
    }

    /// How the last state edit was classified against the cached
    /// evaluation (see [`StateDelta`]); tests pin that the cheap edits
    /// stay on the cheap paths.
    pub fn last_delta(&self) -> &StateDelta {
        &self.last_delta
    }

    /// Switch between the index-vector engine (default) and the naive
    /// row-cloning engine. The cache is dropped so the next `view`
    /// evaluates with the selected engine.
    pub fn set_naive_eval(&mut self, naive: bool) {
        if self.eval_opts.naive != naive {
            self.eval_opts.naive = naive;
            self.cache = None;
        }
    }

    /// Set the live-row count at which the index-vector engine
    /// parallelizes (`usize::MAX` forces sequential evaluation).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.eval_opts.parallel_threshold = threshold;
    }

    /// The engine options currently in force.
    pub fn eval_options(&self) -> EvalOptions {
        self.eval_opts
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The current query state (read-only; operators mutate it).
    pub fn state(&self) -> &QueryState {
        &self.state
    }

    /// The base data of the current epoch.
    pub fn base(&self) -> &Relation {
        &self.base
    }

    /// The base data behind its sharing handle: cloning the returned
    /// `Arc` snapshots the current base in O(1). Readers holding the
    /// snapshot are immune to later edits (which copy-on-write).
    pub fn base_arc(&self) -> Arc<Relation> {
        Arc::clone(&self.base)
    }

    /// Number of binary-operator applications (points of
    /// non-commutativity) in this sheet's history.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Monotone data version: the number of committed base-data
    /// mutations (appends, deletes, cell updates, binary operators,
    /// renames). Failed edits roll it back with everything else, so two
    /// sheets with equal version and common history hold identical base
    /// data.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Restore the data-version counter — for snapshot hosts rebuilding
    /// a writer sheet from a published snapshot after a failed publish,
    /// so version numbers stay continuous across the rollback. The
    /// editing operators manage the counter themselves; ordinary callers
    /// never need this.
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Evaluate and return the derived view.
    ///
    /// Paths, cheapest first:
    /// 1. the cache is current → return it;
    /// 2. content unchanged, only the visible list moved (a projection
    ///    toggled) → swap the visible list, nothing else;
    /// 3. content unchanged, grouping/ordering moved → re-sort the cached
    ///    data via the rank cache and rebuild the group tree;
    /// 4. the state diff classifies as a sound delta (narrowed
    ///    selections, one appended/removed computed column — DESIGN.md
    ///    §10) → patch the cached canonical rows and reorganize;
    /// 5. otherwise run the full canonical evaluation.
    ///
    /// `view` classifies from the content key itself rather than
    /// trusting [`Self::last_delta`], so state edits that bypass
    /// `invalidate` (the cascade module's raw access) stay correct.
    pub fn view(&mut self) -> Result<&Derived> {
        let content = ContentKey::of(&self.state);
        let visible = visible_columns(&self.base, &self.state);
        let patched = match self.apply_cached(&content, &visible) {
            Ok(CachePath::Hit) => None,
            Ok(CachePath::Patched(kind)) => Some(kind),
            Ok(CachePath::Miss) => {
                let (derived, canonical, perm) =
                    evaluate_full_with(&self.base, &self.state, self.eval_opts)?;
                self.cache = Some(CacheEntry::new(
                    derived,
                    canonical,
                    content,
                    self.state.spec.clone(),
                    perm,
                ));
                None
            }
            Err(_) => {
                // An incremental path failed part-way: the entry may be
                // inconsistent. Drop it and re-evaluate from scratch —
                // a genuine evaluation error resurfaces here.
                self.cache = None;
                let (derived, canonical, perm) =
                    evaluate_full_with(&self.base, &self.state, self.eval_opts)?;
                self.cache = Some(CacheEntry::new(
                    derived,
                    canonical,
                    content,
                    self.state.spec.clone(),
                    perm,
                ));
                None
            }
        };
        if self.audit {
            if let Some(kind) = patched {
                self.audit_cache(kind)?;
            }
        }
        match self.cache.as_ref() {
            Some(entry) => Ok(&entry.derived),
            // invariant: every arm above either fills the cache or errors.
            None => Err(SheetError::Internal {
                detail: "cache missing after evaluation".to_string(),
            }),
        }
    }

    /// Self-audit one incremental cache patch: recompute the sheet from
    /// scratch and require the patched cache to match exactly. Any
    /// divergence drops the (untrustworthy) cache and reports
    /// [`SheetError::AuditDivergence`] naming the patch path `kind`.
    fn audit_cache(&mut self, kind: &'static str) -> Result<()> {
        let (derived, canonical, _) = evaluate_full_with(&self.base, &self.state, self.eval_opts)?;
        let matches = self
            .cache
            .as_ref()
            .is_some_and(|e| e.derived == derived && e.canonical == canonical);
        if !matches {
            self.cache = None;
            return Err(SheetError::AuditDivergence {
                delta: kind.to_string(),
            });
        }
        Ok(())
    }

    /// Try to bring the cache up to date without a full evaluation.
    /// `Ok(Hit)` means the cached entry was already current;
    /// `Ok(Patched(kind))` means an incremental patch (named for the
    /// audit) brought it current; `Ok(Miss)` means no sound shortcut
    /// exists; `Err` means a shortcut failed mid-application and the
    /// entry must be discarded.
    fn apply_cached(&mut self, content: &ContentKey, visible: &Vec<String>) -> Result<CachePath> {
        let base_cols = self.base_column_names();
        let spec = self.state.spec.clone();
        let threshold = self.eval_opts.parallel_threshold;
        let fast_reorganize = self.fast_reorganize;
        // The delta paths reuse the index-engine machinery, so a sheet
        // pinned to the naive oracle keeps replaying the naive pipeline.
        let incremental = self.incremental && !self.eval_opts.naive;
        let Some(entry) = self.cache.as_mut() else {
            return Ok(CachePath::Miss);
        };
        if entry.content == *content {
            if entry.spec == spec && entry.derived.visible == *visible {
                return Ok(CachePath::Hit);
            }
            if !fast_reorganize {
                return Ok(CachePath::Miss);
            }
            if incremental && entry.spec == spec {
                // Only projection changed: organization-only in the
                // narrowest sense — rows, order and tree all stand.
                entry.derived.visible = visible.clone();
                return Ok(CachePath::Patched("projection-toggle"));
            }
            entry.reorganize(&spec, visible.clone())?;
            return Ok(CachePath::Patched("reorganize"));
        }
        if !incremental {
            return Ok(CachePath::Miss);
        }
        let kind = match classify(&entry.content, content, &base_cols) {
            StateDelta::Narrow { predicates } => {
                // The narrow path maintains the derived view through the
                // presentation permutation; a (naive-built) cache without
                // one takes the full evaluation instead.
                if entry.perm.is_none() {
                    return Ok(CachePath::Miss);
                }
                entry.narrow(&predicates, &self.state, threshold)?;
                entry.content = content.clone();
                // Narrowing preserves the cached presentation order,
                // which is only the order a fresh evaluation would
                // produce while every spec sort/group column kept its
                // values. A volatile (aggregate-dependent) spec column
                // was just refreshed, so re-sort even under an
                // unchanged spec (`narrow` dropped the refreshed
                // columns' rank caches, so the reorganize ranks from
                // the new values).
                let volatile = volatile_columns(&self.state.computed);
                let spec_volatile = spec
                    .sort_columns()
                    .iter()
                    .any(|(c, _)| volatile.contains(c));
                if entry.spec != spec || spec_volatile {
                    entry.reorganize(&spec, visible.clone())?;
                } else {
                    entry.derived.visible = visible.clone();
                }
                "narrow"
            }
            StateDelta::AppendComputed { name } => {
                let Some(col) = self.state.computed.iter().find(|c| c.name == name) else {
                    // invariant: `classify` derived the name from this
                    // very state; degrade to the full-evaluation fallback.
                    return Err(SheetError::Internal {
                        detail: format!("appended column `{name}` missing from state"),
                    });
                };
                entry.append_computed(col, threshold)?;
                entry.content = content.clone();
                if entry.spec != spec || entry.perm.is_none() {
                    entry.reorganize(&spec, visible.clone())?;
                } else {
                    entry.derived.visible = visible.clone();
                }
                "append-computed"
            }
            StateDelta::RemoveComputed { name } => {
                entry.remove_computed(&name)?;
                entry.content = content.clone();
                if entry.spec != spec {
                    entry.reorganize(&spec, visible.clone())?;
                } else {
                    entry.derived.visible = visible.clone();
                }
                "remove-computed"
            }
            // The base-data variants are recorded by the edit methods
            // themselves (`append_rows` & co patch eagerly); a state
            // *diff* never classifies as one of them.
            StateDelta::Reorganize
            | StateDelta::Full { .. }
            | StateDelta::RowsAppended { .. }
            | StateDelta::RowsDeleted { .. }
            | StateDelta::CellsUpdated { .. } => return Ok(CachePath::Miss),
        };
        Ok(CachePath::Patched(kind))
    }

    fn base_column_names(&self) -> BTreeSet<String> {
        self.base
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Evaluate without caching (for read-only contexts).
    pub fn evaluate_now(&self) -> Result<Derived> {
        evaluate_with(&self.base, &self.state, self.eval_opts)
    }

    /// `EXPLAIN` — render the operator DAG the evaluator would execute
    /// for the current `(base, state)` pair as an indented text tree
    /// (fused filter passes, pre-dedup pushdown, deferred computed
    /// columns, presentation sort and grouping). Read-only: plans
    /// without evaluating.
    pub fn explain(&self) -> Result<String> {
        let plan = crate::plan::Plan::prepare(&self.base, &self.state)?.render();
        // Surface how the last edit was classified (including
        // `Full { reason }`) so fallbacks — e.g. a base edit a gate
        // refused to patch — are diagnosable from the session.
        Ok(format!("{plan}\nlast delta: {}", self.last_delta))
    }

    /// Visible column names in display order (cheap; no evaluation).
    pub fn visible(&self) -> Vec<String> {
        visible_columns(&self.base, &self.state)
    }

    /// Every column name that exists (base + computed), hidden or not.
    pub fn all_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .base
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        out.extend(self.state.computed.iter().map(|c| c.name.clone()));
        out
    }

    /// Called by every state-editing operator: diffs the cached content
    /// key against the new state and records a typed [`StateDelta`]. The
    /// cache itself is kept — `view` re-derives the classification (so
    /// raw state edits that skip this call stay correct) and picks the
    /// cheapest sound path. Base-data changes call
    /// [`Self::invalidate_base`].
    pub(crate) fn invalidate(&mut self) {
        self.last_delta = match &self.cache {
            None => FULL_NO_CACHE,
            Some(entry) => classify(
                &entry.content,
                &ContentKey::of(&self.state),
                &self.base_column_names(),
            ),
        };
    }

    /// Hard invalidation for operations that change the base data
    /// (binary operators, rename, restore).
    fn invalidate_base(&mut self) {
        self.cache = None;
        self.last_delta = StateDelta::Full {
            reason: "base data changed",
        };
    }

    fn assert_column_exists(&self, name: &str) -> Result<()> {
        if self.base.schema().contains(name) || self.state.is_computed(name) {
            Ok(())
        } else {
            Err(SheetError::UnknownColumn {
                name: name.to_string(),
            })
        }
    }

    // ------------------------------------------------------------------
    // Transactional edit machinery (DESIGN.md §12)
    // ------------------------------------------------------------------

    /// Rows the trial evaluation samples on large sheets.
    const TRIAL_ROWS: usize = 256;

    /// Bounded validation pass over a just-edited state: evaluate the
    /// base (or, above [`Self::TRIAL_ROWS`] rows, a prefix sample of it)
    /// so an edit that cannot evaluate is refused before it commits.
    /// Pure — it never touches the cache or `last_delta`, so the
    /// incremental paths in [`Self::view`] see exactly the deltas they
    /// would otherwise.
    ///
    /// Most evaluation failures (unknown columns, non-boolean selection
    /// predicates, type mismatches) are data-independent and surface on
    /// any prefix. A failure that *is* data-dependent — division by zero
    /// inside a sampled aggregate, say — could be an artifact of the
    /// sample, so it is confirmed against a full evaluation before the
    /// edit is refused: sampling never rejects a valid edit.
    fn trial_eval(&self) -> Result<()> {
        if self.base.len() <= Self::TRIAL_ROWS {
            return evaluate_with(&self.base, &self.state, self.eval_opts).map(drop);
        }
        let ids: Vec<u32> = (0..Self::TRIAL_ROWS as u32).collect();
        let sample = self.base.take_rows(&ids);
        match evaluate_with(&sample, &self.state, self.eval_opts) {
            Ok(_) => Ok(()),
            Err(_) => evaluate_with(&self.base, &self.state, self.eval_opts).map(drop),
        }
    }

    /// Run a state edit transactionally: snapshot the cheap mutable
    /// fields, apply `edit`, validate the result with
    /// [`Self::trial_eval`], and on any `Err` restore the snapshot so a
    /// failed edit is a perfect no-op — state, delta classification,
    /// epoch and generated-name counter all exactly as before. The
    /// evaluation cache needs no rollback: unary edits never write it
    /// (only `view` does), which is also why nothing expensive is cloned
    /// here.
    pub(crate) fn transact<T>(
        &mut self,
        edit: impl FnOnce(&mut Spreadsheet) -> Result<T>,
    ) -> Result<T> {
        let state = self.state.clone();
        let last_delta = self.last_delta.clone();
        let epoch = self.epoch;
        let next_formula_id = self.next_formula_id;
        let result = edit(self).and_then(|value| self.trial_eval().map(|()| value));
        if result.is_err() {
            self.state = state;
            self.last_delta = last_delta;
            self.epoch = epoch;
            self.next_formula_id = next_formula_id;
        }
        result
    }

    // ------------------------------------------------------------------
    // Base-data edit operators (streaming deltas, DESIGN.md §14)
    // ------------------------------------------------------------------

    /// Why the cached evaluation cannot be patched for a base-data edit,
    /// or `None` when the streaming paths are sound. The returned string
    /// doubles as the `Full { reason }` the fallback records, so a
    /// refused patch is diagnosable through [`Self::explain`].
    /// Armable failure gates for the base-data edit paths (the macro
    /// needs the site as a literal, hence one function per site); with
    /// the `fault-injection` feature off they compile to `Ok(())`.
    fn fault_base_append() -> Result<()> {
        ssa_relation::fault_check!("delta.base_append");
        Ok(())
    }

    fn fault_base_retract() -> Result<()> {
        ssa_relation::fault_check!("delta.base_retract");
        Ok(())
    }

    fn base_patch_block(&self) -> Option<&'static str> {
        if !self.incremental || self.eval_opts.naive {
            return Some("incremental paths disabled");
        }
        let Some(entry) = self.cache.as_ref() else {
            return Some("no cached evaluation");
        };
        if entry.perm.is_none() || entry.base_ids.is_none() {
            return Some("cache lacks row provenance");
        }
        if self.state.dedup {
            // An appended duplicate must vanish and a delete can
            // resurface a previously-shadowed duplicate; both re-decide
            // survivor identity globally.
            return Some("duplicate elimination re-decides survivors");
        }
        let volatile = volatile_columns(&self.state.computed);
        if self
            .state
            .selections
            .iter()
            .any(|s| s.predicate.columns().iter().any(|c| volatile.contains(c)))
        {
            // Group membership moves with the data, so a row's survival
            // could flip without being touched itself.
            return Some("a selection reads an aggregate-dependent column");
        }
        for col in &self.state.computed {
            match &col.def {
                ComputedDef::Formula { .. } if volatile.contains(&col.name) => {
                    // Every row's value changes when the aggregate does.
                    return Some("a formula depends on an aggregate");
                }
                ComputedDef::Aggregate { column, basis, .. }
                    if volatile.contains(column) || basis.iter().any(|b| volatile.contains(b)) =>
                {
                    return Some("a nested aggregate reads another aggregate");
                }
                ComputedDef::Aggregate { basis, .. } if !self.basis_matches_spec(basis) => {
                    // Groups are no longer contiguous runs of the
                    // presentation order; patchable in principle (scan
                    // fallback) but kept off the streaming fast path.
                    return Some("an aggregate's basis no longer matches a grouping level");
                }
                _ => {}
            }
        }
        if self
            .state
            .spec
            .sort_columns()
            .iter()
            .any(|(c, _)| volatile.contains(c))
        {
            // A single append could reorder every group.
            return Some("presentation order depends on an aggregate");
        }
        None
    }

    /// Whether `basis` is the absolute basis of some current grouping
    /// level (or empty — a whole-sheet aggregate), which makes its
    /// groups contiguous runs of the presentation order.
    fn basis_matches_spec(&self, basis: &[String]) -> bool {
        let want: BTreeSet<&str> = basis.iter().map(|s| s.as_str()).collect();
        let mut acc: BTreeSet<&str> = BTreeSet::new();
        if want == acc {
            return true;
        }
        for level in &self.state.spec.levels {
            acc.extend(level.basis.iter().map(|s| s.as_str()));
            if want == acc {
                return true;
            }
        }
        false
    }

    /// Whether updating `column` can be patched in place (Tier A): the
    /// column drives no selection, no formula, no grouping basis and no
    /// sort key, so only the cell itself — plus any aggregate *reading*
    /// the column — changes. Anything else takes the delete+re-insert
    /// path, which re-runs selections and re-places the row.
    fn update_in_place_ok(&self, column: &str) -> bool {
        if self
            .state
            .selections
            .iter()
            .any(|s| s.predicate.columns().contains(column))
        {
            return false;
        }
        for col in &self.state.computed {
            match &col.def {
                // A formula reading the column must be recomputed for the
                // row; route through re-insert rather than special-case.
                ComputedDef::Formula { expr } => {
                    if expr.columns().contains(column) {
                        return false;
                    }
                }
                ComputedDef::Aggregate { basis, .. } => {
                    if basis.iter().any(|b| b == column) {
                        return false;
                    }
                }
            }
        }
        !self
            .state
            .spec
            .sort_columns()
            .iter()
            .any(|(c, _)| c == column)
    }

    /// Append rows to the base relation, patching the cached evaluation
    /// in place when sound (sublinear per row: each row runs the
    /// selections once, splices into the permutation/tree by binary
    /// search, and advances per-group aggregate folds). Returns the
    /// number of rows appended. On any failure the base relation is
    /// restored — a failed append is a perfect no-op.
    pub fn append_rows(&mut self, rows: Vec<Tuple>) -> Result<usize> {
        let count = rows.len();
        if count == 0 {
            return Ok(0);
        }
        // Base edits do not move the content key, so a stale cache from
        // an unseen state edit would otherwise be patched as if current:
        // bring it current (or discover it cannot be) first.
        if self.incremental && !self.eval_opts.naive && self.cache.is_some() {
            self.view()?;
        }
        let block = self.base_patch_block();
        let first = Arc::make_mut(&mut self.base).append_rows(rows)?;
        let patched: Result<bool> = Self::fault_base_append().and_then(|()| match block {
            None => self.patch_base_append(first, count).map(|()| true),
            Some(_) => self.trial_eval().map(|()| false),
        });
        match patched {
            Ok(true) => {
                self.version += 1;
                self.last_delta = StateDelta::RowsAppended { count };
                if self.audit {
                    self.audit_cache("rows-appended")?;
                }
                Ok(count)
            }
            Ok(false) => {
                self.version += 1;
                self.cache = None;
                self.last_delta = StateDelta::Full {
                    reason: block.unwrap_or("base data changed"),
                };
                Ok(count)
            }
            Err(e) => {
                let ids: Vec<u32> = (first..first + count).map(|i| i as u32).collect();
                // The rows were just appended at the tail, so removal
                // cannot fail; a half-applied patch still forces the
                // cache drop below either way.
                let _ = Arc::make_mut(&mut self.base).remove_rows_at(&ids);
                self.cache = None;
                self.last_delta = FULL_NO_CACHE;
                Err(e)
            }
        }
    }

    /// Append a single row (convenience over [`Self::append_rows`]).
    pub fn append_row(&mut self, row: Tuple) -> Result<usize> {
        self.append_rows(vec![row])
    }

    /// Delete the base rows at `ids` (positions in the base relation;
    /// duplicates ignored), narrowing the cached evaluation through the
    /// row-provenance map when sound. Returns the number of rows
    /// deleted. On failure the rows are reinserted — a no-op.
    pub fn delete_rows(&mut self, ids: &[u32]) -> Result<usize> {
        let mut ids: Vec<u32> = ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        if ids.is_empty() {
            return Ok(0);
        }
        if self.incremental && !self.eval_opts.naive && self.cache.is_some() {
            self.view()?;
        }
        let block = self.base_patch_block();
        let removed = Arc::make_mut(&mut self.base).remove_rows_at(&ids)?;
        let count = removed.len();
        let patched: Result<bool> = Self::fault_base_retract().and_then(|()| match block {
            None => self.patch_base_delete(&ids).map(|()| true),
            Some(_) => self.trial_eval().map(|()| false),
        });
        match patched {
            Ok(true) => {
                self.version += 1;
                self.last_delta = StateDelta::RowsDeleted { count };
                if self.audit {
                    self.audit_cache("rows-deleted")?;
                }
                Ok(count)
            }
            Ok(false) => {
                self.version += 1;
                self.cache = None;
                self.last_delta = StateDelta::Full {
                    reason: block.unwrap_or("base data changed"),
                };
                Ok(count)
            }
            Err(e) => {
                Arc::make_mut(&mut self.base).reinsert_rows(removed);
                self.cache = None;
                self.last_delta = FULL_NO_CACHE;
                Err(e)
            }
        }
    }

    /// Delete every base row satisfying `predicate` (over base columns
    /// only — deletes address the data, not the derived view). Returns
    /// the number of rows deleted.
    pub fn delete_where(&mut self, predicate: &Expr) -> Result<usize> {
        for c in predicate.columns() {
            if !self.base.schema().contains(&c) {
                return Err(SheetError::UnknownColumn { name: c });
            }
        }
        let ids = filter_relation(&self.base, predicate, self.eval_opts.parallel_threshold)?;
        self.delete_rows(&ids)
    }

    /// Update one base cell, patching the cached evaluation when sound:
    /// in place when the column drives nothing positional (Tier A), as
    /// delete+re-insert of the row otherwise — with key-change detection
    /// confined to the row's old and new groups, so untouched groups
    /// never re-aggregate. Returns the previous value. On failure the
    /// old value is restored — a no-op.
    pub fn update_cell(&mut self, row: u32, column: &str, value: Value) -> Result<Value> {
        if !self.base.schema().contains(column) {
            return Err(SheetError::UnknownColumn {
                name: column.to_string(),
            });
        }
        let current = *self.base.value_at(row as usize, column)?;
        if current == value {
            return Ok(current);
        }
        if self.incremental && !self.eval_opts.naive && self.cache.is_some() {
            self.view()?;
        }
        let block = self.base_patch_block();
        let old = Arc::make_mut(&mut self.base).set_value(row as usize, column, value)?;
        let patched: Result<bool> = Self::fault_base_retract().and_then(|()| match block {
            None => self.patch_base_update(row, column).map(|()| true),
            Some(_) => self.trial_eval().map(|()| false),
        });
        match patched {
            Ok(true) => {
                self.version += 1;
                self.last_delta = StateDelta::CellsUpdated { count: 1 };
                if self.audit {
                    self.audit_cache("cells-updated")?;
                }
                Ok(old)
            }
            Ok(false) => {
                self.version += 1;
                self.cache = None;
                self.last_delta = StateDelta::Full {
                    reason: block.unwrap_or("base data changed"),
                };
                Ok(old)
            }
            Err(e) => {
                let _ = Arc::make_mut(&mut self.base).set_value(row as usize, column, old);
                self.cache = None;
                self.last_delta = FULL_NO_CACHE;
                Err(e)
            }
        }
    }

    fn patch_base_append(&mut self, first: usize, count: usize) -> Result<()> {
        let Spreadsheet {
            cache, base, state, ..
        } = self;
        let entry = cache.as_mut().ok_or_else(|| SheetError::Internal {
            detail: "base-data patch without a cached evaluation".to_string(),
        })?;
        for i in 0..count {
            entry.insert_base_row(base, (first + i) as u32, state)?;
        }
        Ok(())
    }

    fn patch_base_delete(&mut self, removed: &[u32]) -> Result<()> {
        let threshold = self.eval_opts.parallel_threshold;
        let Spreadsheet { cache, state, .. } = self;
        let entry = cache.as_mut().ok_or_else(|| SheetError::Internal {
            detail: "base-data patch without a cached evaluation".to_string(),
        })?;
        entry.delete_base_rows(removed, state, threshold)
    }

    fn patch_base_update(&mut self, row: u32, column: &str) -> Result<()> {
        let in_place = self.update_in_place_ok(column);
        let Spreadsheet {
            cache, base, state, ..
        } = self;
        let entry = cache.as_mut().ok_or_else(|| SheetError::Internal {
            detail: "base-data patch without a cached evaluation".to_string(),
        })?;
        if in_place {
            return entry.update_base_cell(base, row, column, state);
        }
        // Tier C — delete + re-insert. Record each aggregate's *old*
        // group key first: the updated row may leave its group, whose
        // remaining rows then hold a stale (wider) fold.
        let live = entry
            .base_ids
            .as_ref()
            .ok_or_else(|| SheetError::Internal {
                detail: "base-data patch without row provenance".to_string(),
            })?
            .binary_search(&row)
            .ok();
        let mut old_targets: Vec<Option<Vec<(usize, Value)>>> = vec![None; state.computed.len()];
        if let Some(cpos) = live {
            for (ci, col) in state.computed.iter().enumerate() {
                let ComputedDef::Aggregate { basis, .. } = &col.def else {
                    continue;
                };
                let target: Vec<(usize, Value)> = basis
                    .iter()
                    .map(|b| {
                        let bi = entry.canonical.schema().index_of(b)?;
                        Ok((bi, *entry.canonical.rows()[cpos].get(bi)))
                    })
                    .collect::<Result<Vec<_>>>()?;
                old_targets[ci] = Some(target);
            }
            entry.remove_canonical_row(cpos)?;
        }
        entry.insert_base_row(base, row, state)?;
        // Re-aggregate every old group unconditionally. Even when the
        // row re-enters the same group the fast "value unchanged" check
        // inside the insert is not sound here: the cached cells hold the
        // pre-removal fold while the fresh accumulators hold the
        // post-removal one, so equality of the latter proves nothing
        // about the former. (Pure appends never remove, which is why the
        // check is sound there.)
        let sort_idx = resolve_sort_idx(&entry.spec, &entry.canonical)?;
        for (ci, col) in state.computed.iter().enumerate() {
            let Some(target) = &old_targets[ci] else {
                continue;
            };
            let ComputedDef::Aggregate {
                func,
                column: in_col,
                ..
            } = &col.def
            else {
                continue;
            };
            let idx = entry.canonical.schema().index_of(&col.name)?;
            let in_idx = entry.canonical.schema().index_of(in_col)?;
            entry.agg_accums.remove(&idx);
            let CacheEntry {
                canonical,
                derived,
                perm,
                ..
            } = &mut *entry;
            let perm = perm.as_ref().ok_or_else(|| SheetError::Internal {
                detail: "base-data patch without the permutation".to_string(),
            })?;
            recompute_group(
                canonical,
                &mut derived.data,
                perm,
                &sort_idx,
                idx,
                in_idx,
                *func,
                target,
            )?;
        }
        // Retraction can narrow any computed column's unified type;
        // updates are not on the µs-gated path, so re-derive them all.
        for col in &state.computed {
            let idx = entry.canonical.schema().index_of(&col.name)?;
            let CacheEntry {
                canonical, derived, ..
            } = &mut *entry;
            re_unify_column(canonical, &mut derived.data, idx);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data organization operators (Sec. III-A)
    // ------------------------------------------------------------------

    /// τ — grouping (Def. 3). `grouping_basis` is the *absolute* basis of
    /// the new finest level and must strictly extend the current finest
    /// basis ("a new level of grouping is created when and only when
    /// grouping-basis contains a superset of attributes of any existing
    /// grouping basis"). The newly grouped attributes leave the finest
    /// ordering list (`o_L = L − grouping-basis`).
    pub fn group(&mut self, grouping_basis: &[&str], order: Direction) -> Result<()> {
        self.transact(|s| {
            for a in grouping_basis {
                s.assert_column_exists(a)?;
            }
            let current: BTreeSet<String> = s.state.spec.all_grouping_attributes();
            let requested: BTreeSet<String> =
                grouping_basis.iter().map(|a| a.to_string()).collect();
            if !requested.is_superset(&current) || requested == current {
                return Err(SheetError::NotASuperset {
                    basis: grouping_basis.iter().map(|a| a.to_string()).collect(),
                });
            }
            let relative: Vec<String> = requested.difference(&current).cloned().collect();
            s.state
                .spec
                .levels
                .push(GroupLevel::new(relative.clone(), order));
            s.state.spec.subtract_from_finest_order(&relative);
            s.invalidate();
            Ok(())
        })
    }

    /// Convenience: add `attributes` as a new innermost grouping level
    /// (the interface's "add to the existing grouping" choice,
    /// Sec. VI-A).
    pub fn group_add(&mut self, attributes: &[&str], order: Direction) -> Result<()> {
        let mut absolute: Vec<String> = self
            .state
            .spec
            .all_grouping_attributes()
            .into_iter()
            .collect();
        absolute.extend(attributes.iter().map(|s| s.to_string()));
        let refs: Vec<&str> = absolute.iter().map(|s| s.as_str()).collect();
        self.group(&refs, order)
    }

    /// The interface's other choice: "destroy the current grouping and use
    /// this new one instead" — refused while aggregates depend on the
    /// current grouping.
    pub fn regroup(&mut self, attributes: &[&str], order: Direction) -> Result<()> {
        self.transact(|s| {
            let aggs = s.state.aggregates_below_level(1);
            if !aggs.is_empty() {
                return Err(SheetError::GroupingInUse {
                    level: 1,
                    aggregates: aggs,
                });
            }
            for a in attributes {
                s.assert_column_exists(a)?;
            }
            s.state.spec.levels.clear();
            s.state
                .spec
                .levels
                .push(GroupLevel::new(attributes.iter().copied(), order));
            let grouped: Vec<String> = attributes.iter().map(|a| a.to_string()).collect();
            s.state.spec.subtract_from_finest_order(&grouped);
            s.invalidate();
            Ok(())
        })
    }

    /// Remove all grouping (refused while aggregates depend on it).
    pub fn ungroup(&mut self) -> Result<()> {
        self.transact(|s| {
            let aggs = s.state.aggregates_below_level(1);
            if !aggs.is_empty() {
                return Err(SheetError::GroupingInUse {
                    level: 1,
                    aggregates: aggs,
                });
            }
            s.state.spec.levels.clear();
            s.invalidate();
            Ok(())
        })
    }

    /// λ — ordering (Def. 4). Orders the contents of level-`l` groups by
    /// `attribute` (1-based levels; `l = level_count()` is the finest).
    ///
    /// * Case 2 — `attribute` is the relative basis of level `l+1`: only
    ///   the direction of those groups changes.
    /// * Case 1 — any other attribute at an outer level: levels deeper
    ///   than `l` are destroyed and `attribute` becomes the new finest
    ///   ordering. Refused (as in the prototype) while aggregates depend
    ///   on the doomed levels.
    /// * Case 3 — finest level: ordering by a grouping attribute is a
    ///   no-op; otherwise the attribute's direction is updated in place or
    ///   appended to the finest ordering list.
    pub fn order(&mut self, attribute: &str, direction: Direction, level: usize) -> Result<()> {
        self.transact(|s| {
            s.assert_column_exists(attribute)?;
            let n = s.state.spec.level_count();
            if level == 0 || level > n {
                return Err(SheetError::NoSuchLevel { level, levels: n });
            }
            if level < n {
                if s.state.spec.in_relative_basis(attribute, level + 1) {
                    // Case 2: flip direction of the level-(l+1) groups.
                    s.state.spec.levels[level - 1].direction = direction;
                } else {
                    if s.state.spec.all_grouping_attributes().contains(attribute) {
                        // Ordering an outer level by some *other* level's
                        // grouping attribute is meaningless.
                        return Err(SheetError::BadOrderingAttribute {
                            attribute: attribute.to_string(),
                            level,
                        });
                    }
                    // Case 1: destroy deeper levels.
                    let aggs = s.state.aggregates_below_level(level);
                    if !aggs.is_empty() {
                        return Err(SheetError::GroupingInUse {
                            level,
                            aggregates: aggs,
                        });
                    }
                    s.state.spec.truncate_levels(level);
                    s.state.spec.finest_order = vec![OrderKey::new(attribute, direction)];
                }
            } else {
                // Case 3: the finest level.
                if s.state.spec.all_grouping_attributes().contains(attribute) {
                    // No-op: all tuples in a finest group share this value.
                    return Ok(());
                }
                match s
                    .state
                    .spec
                    .finest_order
                    .iter_mut()
                    .find(|k| k.attribute == attribute)
                {
                    Some(k) => k.direction = direction,
                    None => s
                        .state
                        .spec
                        .finest_order
                        .push(OrderKey::new(attribute, direction)),
                }
            }
            s.invalidate();
            Ok(())
        })
    }

    // ------------------------------------------------------------------
    // Data manipulation operators (Sec. III-B)
    // ------------------------------------------------------------------

    /// σ — selection (Def. 5). Returns the id of the retained predicate,
    /// which query modification can later replace or delete (Sec. V-B).
    pub fn select(&mut self, predicate: Expr) -> Result<u64> {
        self.transact(|s| {
            for col in predicate.columns() {
                s.assert_column_exists(&col)?;
            }
            let id = s.state.add_selection(predicate);
            s.invalidate();
            Ok(id)
        })
    }

    /// σ with a caller-assigned selection id. Replicated sheets name
    /// selections after the event that created them (see
    /// [`QueryState::add_selection_with_id`]); everything else matches
    /// [`Self::select`].
    pub fn select_with_id(&mut self, id: u64, predicate: Expr) -> Result<u64> {
        self.transact(|s| {
            for col in predicate.columns() {
                s.assert_column_exists(&col)?;
            }
            let id = s.state.add_selection_with_id(id, predicate);
            s.invalidate();
            Ok(id)
        })
    }

    /// π — projection (Def. 6): remove one column from `C`.
    ///
    /// * A **base** column is merely hidden (`R` is untouched) and can be
    ///   reinstated (Sec. V-B's inverse projection).
    /// * A **computed** column's definition is removed outright — this is
    ///   how the paper frees a grouping from its aggregates ("the
    ///   aggregates have to be projected out", Sec. III-A) — refused while
    ///   other state depends on it.
    pub fn project_out(&mut self, column: &str) -> Result<()> {
        self.transact(|s| {
            s.assert_column_exists(column)?;
            if s.state.is_computed(column) {
                let dependents = s.state.dependents_of(column);
                if !dependents.is_empty() {
                    return Err(SheetError::ColumnInUse {
                        name: column.to_string(),
                        dependents,
                    });
                }
                s.state.computed.retain(|c| c.name != column);
                s.state.projected_out.remove(column);
            } else {
                if s.state.projected_out.contains(column) {
                    return Err(SheetError::ColumnHidden {
                        name: column.to_string(),
                    });
                }
                s.state.projected_out.insert(column.to_string());
            }
            s.invalidate();
            Ok(())
        })
    }

    /// Inverse projection Π̄ (Sec. V-B): reinstate a hidden base column as
    /// if the projection never took place.
    pub fn reinstate(&mut self, column: &str) -> Result<()> {
        self.transact(|s| {
            if !s.state.projected_out.remove(column) {
                return Err(SheetError::UnknownColumn {
                    name: column.to_string(),
                });
            }
            s.invalidate();
            Ok(())
        })
    }

    /// η — aggregation (Def. 11): creates a computed column holding
    /// `func(column)` per level-`level` group, value repeated on every row
    /// of the group. Returns the generated column name (`Avg_Price`
    /// style, Table III).
    pub fn aggregate(&mut self, func: AggFunc, column: &str, level: usize) -> Result<String> {
        self.transact(|s| {
            s.assert_column_exists(column)?;
            let n = s.state.spec.level_count();
            if level == 0 || level > n {
                return Err(SheetError::NoSuchLevel { level, levels: n });
            }
            if func.requires_numeric() {
                // Base columns expose a static type; computed columns are
                // checked against their current materialization.
                let numeric = if let Ok(c) = s.base.schema().column(column) {
                    c.ty.is_numeric() || c.ty == ValueType::Null
                } else {
                    let d = s.evaluate_now()?;
                    d.data
                        .schema()
                        .column(column)
                        .map(|c| c.ty.is_numeric() || c.ty == ValueType::Null)
                        .unwrap_or(false)
                };
                if !numeric {
                    return Err(SheetError::NonNumericAggregate {
                        func: func.short_name().to_string(),
                        column: column.to_string(),
                    });
                }
            }
            let name = s.fresh_column_name(&format!("{}_{}", func.short_name(), column));
            let basis: Vec<String> = s.state.spec.absolute_basis(level).into_iter().collect();
            s.state.computed.push(ComputedColumn::aggregate(
                name.clone(),
                func,
                column,
                level,
                basis,
            ));
            s.invalidate();
            Ok(name)
        })
    }

    /// θ — formula computation (Def. 12): a row-wise computed column. With
    /// no name given the system generates one and "reminds the user of the
    /// new column" (Sec. VI-A). Returns the column name.
    pub fn formula(&mut self, name: Option<&str>, expr: Expr) -> Result<String> {
        self.transact(|s| {
            for col in expr.columns() {
                s.assert_column_exists(&col)?;
            }
            let name = match name {
                Some(n) => {
                    if s.base.schema().contains(n) || s.state.is_computed(n) {
                        return Err(SheetError::DuplicateColumn {
                            name: n.to_string(),
                        });
                    }
                    n.to_string()
                }
                None => {
                    let n = s.fresh_column_name(&format!("F{}", s.next_formula_id));
                    s.next_formula_id += 1;
                    n
                }
            };
            s.state
                .computed
                .push(ComputedColumn::formula(name.clone(), expr));
            s.invalidate();
            Ok(name)
        })
    }

    /// DE — duplicate elimination (Def. 13): removes duplicate `R`-tuples.
    /// Idempotent; computed columns recompute automatically.
    pub fn dedup(&mut self) -> Result<()> {
        self.transact(|s| {
            s.state.dedup = true;
            s.invalidate();
            Ok(())
        })
    }

    /// Housekeeping **Rename** (Sec. III-C): renames a column everywhere —
    /// data, computed definitions, predicates, grouping and ordering.
    /// Transactional like every other edit: a trial-evaluation failure
    /// renames back and restores state, cache and delta.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        self.assert_column_exists(from)?;
        if from == to {
            return Ok(());
        }
        if self.base.schema().contains(to) || self.state.is_computed(to) {
            return Err(SheetError::DuplicateColumn {
                name: to.to_string(),
            });
        }
        let in_base = self.base.schema().contains(from);
        if in_base {
            Arc::make_mut(&mut self.base)
                .schema_mut()
                .rename(from, to)?;
        }
        let old_state = self.state.clone();
        let old_delta = self.last_delta.clone();
        let old_cache = self.cache.take();
        self.state.rename_column(from, to);
        self.last_delta = StateDelta::Full {
            reason: "base data changed",
        };
        if let Err(e) = self.trial_eval() {
            if in_base {
                // invariant: `from` was just freed, so renaming back succeeds.
                let _ = Arc::make_mut(&mut self.base).schema_mut().rename(to, from);
            }
            self.state = old_state;
            self.last_delta = old_delta;
            self.cache = old_cache;
            return Err(e);
        }
        self.version += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Binary operators (points of non-commutativity)
    // ------------------------------------------------------------------

    /// **Save** (Sec. III-C): snapshot this sheet for later binary
    /// operations or re-opening. The current sheet is unaffected.
    pub fn save(&self, name: impl Into<String>) -> Result<StoredSheet> {
        let derived = self.evaluate_now()?;
        // Keep only R's columns (computed ones do not participate in
        // binary operators).
        let mut relation = derived.data;
        for c in &self.state.computed {
            relation.drop_column(&c.name)?;
        }
        relation.set_name(self.name.clone());
        let mut state = self.state.clone();
        state.consume_at_non_commutativity_point();
        Ok(StoredSheet {
            name: name.into(),
            relation,
            state,
        })
    }

    /// Raw durability snapshot: the live base relation and query state
    /// exactly as they stand — selections retained, nothing consumed.
    /// Unlike [`Self::save`], which evaluates and folds state for binary
    /// operators, re-opening this image via [`Self::open`] reproduces the
    /// sheet bit for bit, which is what log compaction needs.
    pub fn freeze_raw(&self) -> StoredSheet {
        StoredSheet {
            name: self.name.clone(),
            relation: (*self.base).clone(),
            state: self.state.clone(),
        }
    }

    /// **Open** (Sec. III-C): resurrect a stored sheet as the current one.
    ///
    /// The stored state is validated against the stored relation's schema
    /// first, so a hand-edited or corrupted snapshot fails here, at the
    /// open boundary, with [`SheetError::InvalidStored`] — not far from
    /// the cause at first evaluation.
    pub fn open(stored: &StoredSheet) -> Result<Spreadsheet> {
        Self::validate_stored(stored)?;
        Ok(Spreadsheet {
            name: stored.relation.name().to_string(),
            base: Arc::new(stored.relation.clone()),
            state: stored.state.clone(),
            cache: None,
            fast_reorganize: true,
            incremental: true,
            last_delta: FULL_NO_CACHE,
            eval_opts: EvalOptions::default(),
            epoch: 0,
            version: 0,
            next_formula_id: 1,
            audit: cfg!(debug_assertions),
        })
    }

    /// Check a [`StoredSheet`]'s query state against its relation: every
    /// column referenced by selections, grouping, ordering, computed
    /// definitions and projections must exist (in the schema or among
    /// the computed columns), computed names must clash with nothing,
    /// and the computed definitions must be acyclic.
    fn validate_stored(stored: &StoredSheet) -> Result<()> {
        let schema = stored.relation.schema();
        let mut known: BTreeSet<String> = schema.names().iter().map(|s| s.to_string()).collect();
        for c in &stored.state.computed {
            if !known.insert(c.name.clone()) {
                return Err(SheetError::InvalidStored {
                    detail: format!(
                        "computed column `{}` clashes with an existing column",
                        c.name
                    ),
                });
            }
        }
        for col in stored.state.referenced_columns() {
            if !known.contains(&col) {
                return Err(SheetError::InvalidStored {
                    detail: format!("state references unknown column `{col}`"),
                });
            }
        }
        for col in &stored.state.projected_out {
            if !known.contains(col) {
                return Err(SheetError::InvalidStored {
                    detail: format!("projection hides unknown column `{col}`"),
                });
            }
        }
        // Computed definitions must resolve in some order from the base
        // columns. Unknown dependencies were rejected above, so a stuck
        // fixpoint here is a genuine cycle.
        let mut resolved: BTreeSet<String> = schema.names().iter().map(|s| s.to_string()).collect();
        let mut remaining: Vec<&ComputedColumn> = stored.state.computed.iter().collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|c| {
                if c.def.dependencies().iter().all(|d| resolved.contains(d)) {
                    resolved.insert(c.name.clone());
                    false
                } else {
                    true
                }
            });
            if remaining.len() == before {
                return Err(SheetError::InvalidStored {
                    detail: format!(
                        "cyclic computed-column definitions involving `{}`",
                        remaining[0].name
                    ),
                });
            }
        }
        Ok(())
    }

    /// The current evaluated `R` (selections and DE applied, computed
    /// columns dropped) — the left operand every binary operator consumes.
    fn evaluated_r(&self) -> Result<Relation> {
        let derived = self.evaluate_now()?;
        let mut r = derived.data;
        for c in &self.state.computed {
            r.drop_column(&c.name)?;
        }
        r.set_name(self.name.clone());
        Ok(r)
    }

    /// Commit a binary operator's result transactionally: `new_base`
    /// becomes `R`, the state is consumed at the point of
    /// non-commutativity, and the epoch advances. Validation and the
    /// trial evaluation run before the old epoch is discarded; on any
    /// `Err` the sheet — base, state, cache, delta and epoch — is
    /// exactly as before the call.
    fn enter_new_epoch(&mut self, new_base: Relation) -> Result<()> {
        let mut new_state = self.state.clone();
        new_state.consume_at_non_commutativity_point();
        // State referencing columns that vanished (set ops keep schema;
        // product/join only add) would fail evaluation — validate eagerly,
        // before anything is committed.
        let cols: BTreeSet<String> = new_base
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for c in new_state.referenced_columns() {
            if !cols.contains(&c) && !new_state.is_computed(&c) {
                return Err(SheetError::UnknownColumn { name: c });
            }
        }
        let old_base = std::mem::replace(&mut self.base, Arc::new(new_base));
        let old_state = std::mem::replace(&mut self.state, new_state);
        let old_delta = std::mem::replace(
            &mut self.last_delta,
            StateDelta::Full {
                reason: "base data changed",
            },
        );
        let old_cache = self.cache.take();
        self.epoch += 1;
        if let Err(e) = self.trial_eval() {
            self.base = old_base;
            self.state = old_state;
            self.last_delta = old_delta;
            self.cache = old_cache;
            self.epoch -= 1;
            return Err(e);
        }
        self.version += 1;
        Ok(())
    }

    /// × — Cartesian product with a stored sheet (Def. 7). Grouping,
    /// ordering, computed definitions and projections of the *current*
    /// sheet are retained and recompute over the product.
    pub fn product(&mut self, stored: &StoredSheet) -> Result<()> {
        let left = self.evaluated_r()?;
        let combined =
            ops::product_opts(&left, &stored.relation, self.eval_opts.parallel_threshold)?;
        self.enter_new_epoch(combined)
    }

    /// ⋈ — join with a stored sheet on `condition` (Def. 10). The
    /// condition may reference columns of both operands; clashing right
    /// names are prefixed with the stored relation's name.
    pub fn join(&mut self, stored: &StoredSheet, condition: Expr) -> Result<()> {
        let left = self.evaluated_r()?;
        // Validate the condition against the combined schema before
        // running the join, so the user gets an immediate report
        // (Sec. VI-A "any invalid condition is reported immediately").
        let combined_schema = left
            .schema()
            .product(stored.relation.schema(), stored.relation.name());
        for c in condition.columns() {
            if !combined_schema.contains(&c) {
                return Err(SheetError::UnknownColumn { name: c });
            }
        }
        // Planned join: operand-local conjuncts are pushed below the
        // join into their side, cheap-first (crate::plan) — identical
        // rows and order to the direct `ops::join_opts` call.
        let joined = crate::plan::join_with_pushdown(
            &left,
            &stored.relation,
            &condition,
            self.eval_opts.parallel_threshold,
        )?;
        self.enter_new_epoch(joined)
    }

    /// ∪ — multiset union with a stored sheet (Def. 8).
    pub fn union(&mut self, stored: &StoredSheet) -> Result<()> {
        let left = self.evaluated_r()?;
        let unioned = ops::union_all(&left, &stored.relation).map_err(|e| match e {
            ssa_relation::RelationError::NotUnionCompatible { left, right } => {
                SheetError::NotCompatible {
                    detail: format!("{left} vs {right}"),
                }
            }
            other => other.into(),
        })?;
        self.enter_new_epoch(unioned)
    }

    /// − — multiset difference with a stored sheet (Def. 9):
    /// `{t, t} − {t} = {t}`.
    pub fn difference(&mut self, stored: &StoredSheet) -> Result<()> {
        let left = self.evaluated_r()?;
        let diffed = ops::difference(&left, &stored.relation).map_err(|e| match e {
            ssa_relation::RelationError::NotUnionCompatible { left, right } => {
                SheetError::NotCompatible {
                    detail: format!("{left} vs {right}"),
                }
            }
            other => other.into(),
        })?;
        self.enter_new_epoch(diffed)
    }

    // ------------------------------------------------------------------
    // Query modification (Sec. V) — state-level edits
    // ------------------------------------------------------------------

    /// Replace the predicate of a retained selection ("change previous
    /// condition of Year = 2005 to Year = 2006", Tables IV–V).
    pub fn replace_selection(&mut self, id: u64, predicate: Expr) -> Result<()> {
        self.transact(|s| {
            for col in predicate.columns() {
                s.assert_column_exists(&col)?;
            }
            if !s.state.replace_selection(id, predicate) {
                return Err(SheetError::UnknownSelection { id });
            }
            s.invalidate();
            Ok(())
        })
    }

    /// Delete a retained selection outright.
    pub fn remove_selection(&mut self, id: u64) -> Result<()> {
        self.transact(|s| {
            s.state
                .remove_selection(id)
                .ok_or(SheetError::UnknownSelection { id })?;
            s.invalidate();
            Ok(())
        })
    }

    /// Remove an aggregate/FC column through query state (same dependency
    /// rule as projection of a computed column).
    pub fn remove_computed(&mut self, name: &str) -> Result<()> {
        self.transact(|s| {
            if !s.state.is_computed(name) {
                return Err(SheetError::UnknownColumn {
                    name: name.to_string(),
                });
            }
            let dependents = s.state.dependents_of(name);
            if !dependents.is_empty() {
                return Err(SheetError::ColumnInUse {
                    name: name.to_string(),
                    dependents,
                });
            }
            s.state.computed.retain(|c| c.name != name);
            s.state.projected_out.remove(name);
            s.invalidate();
            Ok(())
        })
    }

    // ------------------------------------------------------------------

    fn fresh_column_name(&self, base: &str) -> String {
        let exists = |n: &str| self.base.schema().contains(n) || self.state.is_computed(n);
        if !exists(base) {
            return base.to_string();
        }
        let mut i = 2;
        loop {
            let candidate = format!("{base}_{i}");
            if !exists(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Re-pin this sheet to a newer version of its base data, keeping
    /// the accumulated query state (the paper's Sec. II-B: "tuples in R
    /// can be changed anytime, and the spreadsheet always retrieves the
    /// latest data"). The columns of `R` are fixed for the lifetime of a
    /// sheet, so the schemas must match exactly. Transactional: a state
    /// that cannot evaluate over the new data (a data-dependent formula
    /// failure, say) leaves the sheet on its old base.
    pub fn rebase(&mut self, base: Arc<Relation>) -> Result<()> {
        if base.schema() != self.base.schema() {
            return Err(SheetError::NotCompatible {
                detail: format!("rebase of `{}` must keep the base columns fixed", self.name),
            });
        }
        if Arc::ptr_eq(&base, &self.base) {
            return Ok(());
        }
        let old_base = std::mem::replace(&mut self.base, base);
        let old_cache = self.cache.take();
        let old_delta = std::mem::replace(
            &mut self.last_delta,
            StateDelta::Full {
                reason: "base data changed",
            },
        );
        if let Err(e) = self.trial_eval() {
            self.base = old_base;
            self.cache = old_cache;
            self.last_delta = old_delta;
            return Err(e);
        }
        self.version += 1;
        Ok(())
    }

    /// Restore from a raw snapshot (used by the history/undo machinery).
    /// The base comes back as a shared handle: undo never copies data.
    pub(crate) fn restore(
        &mut self,
        base: Arc<Relation>,
        state: QueryState,
        epoch: u64,
        version: u64,
    ) {
        self.base = base;
        self.state = state;
        self.epoch = epoch;
        self.version = version;
        self.invalidate_base();
    }

    /// Raw snapshot of the sheet's defining data (for undo). O(1): the
    /// base is captured by `Arc` handle, so recording history costs
    /// nothing per operation regardless of sheet size; base-editing
    /// operators copy-on-write away from any held snapshot.
    pub(crate) fn snapshot(&self) -> (Arc<Relation>, QueryState, u64, u64) {
        (
            Arc::clone(&self.base),
            self.state.clone(),
            self.epoch,
            self.version,
        )
    }

    /// Crate-private mutable state access for the cascaded-modification
    /// module; `view` re-validates against the content key afterwards.
    pub(crate) fn state_mut_for_modify(&mut self) -> &mut QueryState {
        &mut self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{dealers, used_cars};
    use ssa_relation::{tuple, Value};

    fn sheet() -> Spreadsheet {
        Spreadsheet::over(used_cars())
    }

    fn ids(s: &mut Spreadsheet) -> Vec<i64> {
        s.view()
            .unwrap()
            .data
            .column_values("ID")
            .unwrap()
            .into_iter()
            .map(|v| match v {
                Value::Int(i) => i,
                other => panic!("unexpected {other}"),
            })
            .collect()
    }

    #[test]
    fn base_spreadsheet_shows_everything() {
        let mut s = sheet();
        assert_eq!(s.view().unwrap().len(), 9);
        assert_eq!(s.visible().len(), 6);
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn grouping_requires_strict_superset() {
        let mut s = sheet();
        s.group(&["Model"], Direction::Desc).unwrap();
        // same set again: not a strict extension
        assert!(matches!(
            s.group(&["Model"], Direction::Asc),
            Err(SheetError::NotASuperset { .. })
        ));
        // non-superset
        assert!(matches!(
            s.group(&["Year"], Direction::Asc),
            Err(SheetError::NotASuperset { .. })
        ));
        // proper extension works
        s.group(&["Model", "Year"], Direction::Asc).unwrap();
        assert_eq!(s.state().spec.level_count(), 3);
    }

    #[test]
    fn group_add_extends_innermost() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        assert_eq!(s.state().spec.level_count(), 3);
        assert!(s.state().spec.in_relative_basis("Year", 3));
    }

    #[test]
    fn grouping_removes_attribute_from_finest_order() {
        let mut s = sheet();
        s.order("Condition", Direction::Asc, 1).unwrap();
        s.order("Price", Direction::Asc, 1).unwrap();
        assert_eq!(s.state().spec.finest_order.len(), 2);
        s.group_add(&["Condition"], Direction::Asc).unwrap();
        // Condition moved into grouping; Price stays an order key.
        assert_eq!(s.state().spec.finest_order.len(), 1);
        assert_eq!(s.state().spec.finest_order[0].attribute, "Price");
    }

    #[test]
    fn table_ii_grouping_by_condition() {
        // Example 1: from Table I's arrangement, group additionally by
        // Condition ASC → Table II.
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.order("Price", Direction::Asc, 3).unwrap();
        s.group(&["Year", "Model", "Condition"], Direction::Asc)
            .unwrap();
        assert_eq!(
            ids(&mut s),
            vec![872, 901, 304, 723, 725, 423, 132, 879, 322]
        );
    }

    #[test]
    fn ordering_case2_flips_group_direction() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        // Year is the relative basis of level 3; ordering level 2 by Year
        // flips those groups.
        s.order("Year", Direction::Desc, 2).unwrap();
        assert_eq!(s.state().spec.levels[1].direction, Direction::Desc);
        assert_eq!(s.state().spec.level_count(), 3);
        let first_ids = ids(&mut s);
        // Jetta 2006 cars come before Jetta 2005 now.
        assert_eq!(first_ids[0], 423);
    }

    #[test]
    fn ordering_case1_destroys_deeper_levels() {
        // Example 2: ordering level-2 groups by Mileage destroys level 3.
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.order("Mileage", Direction::Asc, 2).unwrap();
        assert_eq!(s.state().spec.level_count(), 2);
        assert_eq!(s.state().spec.finest_order[0].attribute, "Mileage");
    }

    #[test]
    fn ordering_case1_refused_with_dependent_aggregates() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 3).unwrap();
        let err = s.order("Mileage", Direction::Asc, 2).unwrap_err();
        assert!(matches!(err, SheetError::GroupingInUse { level: 2, .. }));
        // project the aggregate out, then it works
        s.project_out("Avg_Price").unwrap();
        s.order("Mileage", Direction::Asc, 2).unwrap();
    }

    #[test]
    fn ordering_case3_append_update_noop() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.order("Price", Direction::Asc, 2).unwrap();
        s.order("Mileage", Direction::Desc, 2).unwrap();
        assert_eq!(s.state().spec.finest_order.len(), 2);
        // update in place
        s.order("Price", Direction::Desc, 2).unwrap();
        assert_eq!(s.state().spec.finest_order[0].direction, Direction::Desc);
        assert_eq!(s.state().spec.finest_order.len(), 2);
        // ordering by a grouping attribute at the finest level: no-op
        s.order("Model", Direction::Desc, 2).unwrap();
        assert_eq!(s.state().spec.finest_order.len(), 2);
    }

    #[test]
    fn ordering_level_bounds_checked() {
        let mut s = sheet();
        assert!(matches!(
            s.order("Price", Direction::Asc, 2),
            Err(SheetError::NoSuchLevel { .. })
        ));
        assert!(matches!(
            s.order("Price", Direction::Asc, 0),
            Err(SheetError::NoSuchLevel { .. })
        ));
    }

    #[test]
    fn selection_and_modification_tables_iv_v() {
        // Sam: Year = 2005, Model = Jetta, Mileage < 80000; grouped by
        // Condition, ordered by Price ASC → Table IV. Then modify the Year
        // predicate to 2006 → Table V.
        let mut s = sheet();
        let year_id = s.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
        s.select(Expr::col("Mileage").lt(Expr::lit(80000))).unwrap();
        s.group_add(&["Condition"], Direction::Asc).unwrap();
        s.order("Price", Direction::Asc, 2).unwrap();
        assert_eq!(ids(&mut s), vec![872, 901, 304]);
        s.replace_selection(year_id, Expr::col("Year").eq(Expr::lit(2006)))
            .unwrap();
        assert_eq!(ids(&mut s), vec![723, 725, 423]);
    }

    #[test]
    fn selections_listed_per_column() {
        let mut s = sheet();
        s.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        s.select(Expr::col("Price").lt(Expr::lit(16000))).unwrap();
        assert_eq!(s.state().selections_on("Year").len(), 1);
        assert_eq!(s.state().selections_on("Price").len(), 1);
        assert_eq!(s.state().selections_on("Model").len(), 0);
    }

    #[test]
    fn remove_selection_restores_rows() {
        let mut s = sheet();
        let id = s.select(Expr::col("Model").eq(Expr::lit("Civic"))).unwrap();
        assert_eq!(s.view().unwrap().len(), 3);
        s.remove_selection(id).unwrap();
        assert_eq!(s.view().unwrap().len(), 9);
        assert!(matches!(
            s.remove_selection(id),
            Err(SheetError::UnknownSelection { .. })
        ));
    }

    #[test]
    fn projection_hides_and_reinstates_base_columns() {
        let mut s = sheet();
        s.project_out("Mileage").unwrap();
        assert!(!s.visible().contains(&"Mileage".to_string()));
        // double projection is an error surfaced to the UI
        assert!(matches!(
            s.project_out("Mileage"),
            Err(SheetError::ColumnHidden { .. })
        ));
        s.reinstate("Mileage").unwrap();
        assert!(s.visible().contains(&"Mileage".to_string()));
        assert!(s.reinstate("Mileage").is_err());
    }

    #[test]
    fn projection_of_computed_column_removes_definition() {
        let mut s = sheet();
        let name = s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        assert_eq!(name, "Avg_Price");
        s.project_out(&name).unwrap();
        assert!(!s.state().is_computed(&name));
        // name can be reused afterwards
        let name2 = s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        assert_eq!(name2, "Avg_Price");
    }

    #[test]
    fn computed_column_with_dependents_cannot_be_removed() {
        let mut s = sheet();
        let avg = s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        s.select(Expr::col("Price").lt(Expr::col(&avg))).unwrap();
        assert!(matches!(
            s.project_out(&avg),
            Err(SheetError::ColumnInUse { .. })
        ));
        assert!(matches!(
            s.remove_computed(&avg),
            Err(SheetError::ColumnInUse { .. })
        ));
    }

    #[test]
    fn aggregate_names_uniquified() {
        let mut s = sheet();
        assert_eq!(s.aggregate(AggFunc::Avg, "Price", 1).unwrap(), "Avg_Price");
        assert_eq!(
            s.aggregate(AggFunc::Avg, "Price", 1).unwrap(),
            "Avg_Price_2"
        );
    }

    #[test]
    fn aggregate_rejects_non_numeric_and_bad_level() {
        let mut s = sheet();
        assert!(matches!(
            s.aggregate(AggFunc::Avg, "Model", 1),
            Err(SheetError::NonNumericAggregate { .. })
        ));
        assert!(matches!(
            s.aggregate(AggFunc::Avg, "Price", 2),
            Err(SheetError::NoSuchLevel { .. })
        ));
        // COUNT/MIN/MAX on strings are fine
        s.aggregate(AggFunc::Max, "Model", 1).unwrap();
    }

    #[test]
    fn formula_names_and_validation() {
        let mut s = sheet();
        let n1 = s
            .formula(None, Expr::col("Price").div(Expr::lit(1000)))
            .unwrap();
        assert_eq!(n1, "F1");
        let n2 = s
            .formula(Some("PriceK"), Expr::col("Price").div(Expr::lit(1000)))
            .unwrap();
        assert_eq!(n2, "PriceK");
        assert!(matches!(
            s.formula(Some("Price"), Expr::lit(1)),
            Err(SheetError::DuplicateColumn { .. })
        ));
        assert!(s.formula(None, Expr::col("Ghost")).is_err());
    }

    #[test]
    fn dedup_is_idempotent() {
        let mut s = sheet();
        s.project_out("ID").unwrap();
        s.dedup().unwrap();
        s.dedup().unwrap();
        // IDs are unique so R-tuples are all distinct: 9 rows remain.
        assert_eq!(s.view().unwrap().len(), 9);
    }

    #[test]
    fn rename_flows_through_state_and_data() {
        let mut s = sheet();
        s.select(Expr::col("Price").lt(Expr::lit(16000))).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        s.rename("Price", "Cost").unwrap();
        assert!(s.visible().contains(&"Cost".to_string()));
        assert_eq!(s.view().unwrap().len(), 4);
        // renaming to an existing name is rejected
        assert!(s.rename("Cost", "Year").is_err());
        assert!(s.rename("Ghost", "X").is_err());
        // rename a computed column (its generated name predates the
        // Price→Cost rename, so it is still Avg_Price)
        s.rename("Avg_Price", "AvgCost").unwrap();
        assert!(s.state().is_computed("AvgCost"));
    }

    #[test]
    fn save_open_round_trip() {
        let mut s = sheet();
        s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
        let stored = s.save("jettas").unwrap();
        assert_eq!(stored.relation.len(), 6);
        // computed column not materialized in stored data
        assert!(!stored.relation.schema().contains("Avg_Price"));
        // but its definition survives re-opening
        let mut reopened = Spreadsheet::open(&stored).unwrap();
        let d = reopened.view().unwrap();
        assert!(d.data.schema().contains("Avg_Price"));
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn stored_sheet_json_round_trip() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        let stored = s.save("snapshot").unwrap();
        let json = stored.to_json().unwrap();
        let back = StoredSheet::from_json(&json).unwrap();
        assert_eq!(stored, back);
        assert!(StoredSheet::from_json("not json").is_err());
    }

    #[test]
    fn product_enters_new_epoch_and_keeps_presentation() {
        let mut s = sheet();
        s.select(Expr::col("Model").eq(Expr::lit("Civic"))).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        let dealers_sheet = Spreadsheet::over(dealers()).save("dealers").unwrap();
        s.product(&dealers_sheet).unwrap();
        assert_eq!(s.epoch(), 1);
        // selections consumed: 3 Civics × 3 dealers = 9 rows
        assert_eq!(s.view().unwrap().len(), 9);
        assert!(s.state().selections.is_empty());
        // grouping retained
        assert_eq!(s.state().spec.level_count(), 2);
        // clashing Model column prefixed
        assert!(s.view().unwrap().data.schema().contains("dealers.Model"));
    }

    #[test]
    fn join_validates_condition_eagerly() {
        let mut s = sheet();
        let stored = Spreadsheet::over(dealers()).save("dealers").unwrap();
        let err = s
            .join(&stored, Expr::col("Ghost").eq(Expr::col("Model")))
            .unwrap_err();
        assert!(matches!(err, SheetError::UnknownColumn { .. }));
        assert_eq!(s.epoch(), 0, "failed join must not change the sheet");
        s.join(&stored, Expr::col("Model").eq(Expr::col("dealers.Model")))
            .unwrap();
        // Jetta matches 1 dealer row, Civic matches 2: 6×1? No — Jetta rows
        // (6) × 1 match + Civic rows (3) × 2 matches = 12.
        assert_eq!(s.view().unwrap().len(), 12);
    }

    #[test]
    fn union_and_difference_multiset_semantics() {
        let mut jettas = sheet();
        jettas
            .select(Expr::col("Model").eq(Expr::lit("Jetta")))
            .unwrap();
        let stored_jettas = jettas.save("jettas").unwrap();

        let mut all = sheet();
        all.difference(&stored_jettas).unwrap();
        assert_eq!(all.view().unwrap().len(), 3); // the Civics

        let mut again = sheet();
        again.union(&stored_jettas).unwrap();
        assert_eq!(again.view().unwrap().len(), 15); // 9 + 6, duplicates kept

        // incompatible sheets refuse
        let stored_dealers = Spreadsheet::over(dealers()).save("dealers").unwrap();
        let mut s = sheet();
        assert!(matches!(
            s.union(&stored_dealers),
            Err(SheetError::NotCompatible { .. })
        ));
    }

    #[test]
    fn computed_columns_recompute_over_union_result() {
        // Def. 8: computed attributes are retained and recomputed based on
        // the new set membership.
        let mut civics = sheet();
        civics
            .select(Expr::col("Model").eq(Expr::lit("Civic")))
            .unwrap();
        let stored = civics.save("civics").unwrap();

        let mut s = sheet();
        s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
        s.aggregate(AggFunc::Count, "ID", 1).unwrap();
        {
            let d = s.view().unwrap();
            assert_eq!(d.data.value_at(0, "Count_ID").unwrap(), &Value::Int(6));
        }
        s.union(&stored).unwrap();
        let d = s.view().unwrap();
        assert_eq!(d.len(), 9);
        assert_eq!(d.data.value_at(0, "Count_ID").unwrap(), &Value::Int(9));
    }

    #[test]
    fn regroup_and_ungroup_guarded_by_aggregates() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
        assert!(matches!(
            s.regroup(&["Year"], Direction::Asc),
            Err(SheetError::GroupingInUse { .. })
        ));
        assert!(matches!(s.ungroup(), Err(SheetError::GroupingInUse { .. })));
        s.project_out("Avg_Price").unwrap();
        s.regroup(&["Year"], Direction::Asc).unwrap();
        assert!(s.state().spec.in_relative_basis("Year", 2));
        s.ungroup().unwrap();
        assert_eq!(s.state().spec.level_count(), 1);
    }

    #[test]
    fn level_one_aggregate_survives_regroup() {
        let mut s = sheet();
        s.aggregate(AggFunc::Max, "Price", 1).unwrap();
        // level-1 aggregates don't depend on grouping
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.ungroup().unwrap();
        assert!(s.state().is_computed("Max_Price"));
    }

    // ------------------------------------------------------------------
    // Streaming base-data deltas (DESIGN.md §14). Audit is on by default
    // in debug builds, so every patched view below is recompute-checked.
    // ------------------------------------------------------------------

    /// The bench scenario in miniature: grouped, aggregated, sorted.
    fn warm_grouped_sheet() -> Spreadsheet {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.order("Price", Direction::Asc, 3).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
        s.aggregate(AggFunc::Count, "ID", 3).unwrap();
        s.view().unwrap();
        s
    }

    fn assert_matches_fresh(s: &mut Spreadsheet) {
        let fresh = s.evaluate_now().unwrap();
        assert_eq!(s.view().unwrap(), &fresh);
    }

    #[test]
    fn append_patches_grouped_view() {
        let mut s = warm_grouped_sheet();
        s.append_row(tuple![999, "Jetta", 15500, 2005, 60000, "Good"])
            .unwrap();
        assert_eq!(s.last_delta(), &StateDelta::RowsAppended { count: 1 });
        assert_matches_fresh(&mut s);
        // The new row sorted into the Jetta/2005 group by price.
        assert_eq!(
            ids(&mut s),
            vec![132, 879, 322, 304, 872, 999, 901, 423, 723, 725]
        );
        // And the model-level AVG includes it (999 sits at position 5).
        let d = s.view().unwrap();
        let avg = d.data.value_at(5, "Avg_Price").unwrap();
        assert_eq!(avg, &Value::Float(113500.0 / 7.0));
    }

    #[test]
    fn append_lands_new_group_between_groups() {
        // "Ford" sorts between Civic and Jetta: the merge-insert must
        // create a fresh chain in the middle of the tree.
        let mut s = warm_grouped_sheet();
        s.append_row(tuple![555, "Ford", 9000, 2001, 120000, "Fair"])
            .unwrap();
        assert_eq!(s.last_delta(), &StateDelta::RowsAppended { count: 1 });
        assert_matches_fresh(&mut s);
        assert_eq!(
            ids(&mut s),
            vec![132, 879, 322, 555, 304, 872, 901, 423, 723, 725]
        );
    }

    #[test]
    fn append_respects_selections() {
        let mut s = warm_grouped_sheet();
        s.select(Expr::col("Price").lt(Expr::lit(16000))).unwrap();
        s.view().unwrap();
        let before = s.view().unwrap().len();
        // One surviving row, one filtered out.
        s.append_rows(vec![
            tuple![991, "Jetta", 15900, 2005, 1000, "Good"],
            tuple![992, "Jetta", 99000, 2005, 1000, "Good"],
        ])
        .unwrap();
        assert_eq!(s.last_delta(), &StateDelta::RowsAppended { count: 2 });
        assert_matches_fresh(&mut s);
        assert_eq!(s.view().unwrap().len(), before + 1);
        assert_eq!(s.base().len(), 11);
    }

    #[test]
    fn append_through_rank_ordered_formulas() {
        // The selection reads a formula; a row the *first* selection
        // kills must never evaluate the formula (division by zero).
        let mut s = sheet();
        s.select(Expr::col("Mileage").gt(Expr::lit(0))).unwrap();
        s.formula(
            Some("PerMile"),
            Expr::col("Price").div(Expr::col("Mileage")),
        )
        .unwrap();
        s.select(Expr::col("PerMile").ge(Expr::lit(0))).unwrap();
        s.view().unwrap();
        s.append_row(tuple![993, "Civic", 9999, 2001, 0, "Fair"])
            .unwrap();
        assert_eq!(s.last_delta(), &StateDelta::RowsAppended { count: 1 });
        assert_matches_fresh(&mut s);
        assert_eq!(s.view().unwrap().len(), 9);
    }

    #[test]
    fn delete_patches_grouped_view() {
        let mut s = warm_grouped_sheet();
        // Base rows 1 and 2 are the 872/901 Jettas.
        s.delete_rows(&[1, 2]).unwrap();
        assert_eq!(s.last_delta(), &StateDelta::RowsDeleted { count: 2 });
        assert_matches_fresh(&mut s);
        assert_eq!(s.base().len(), 7);
        assert_eq!(ids(&mut s), vec![132, 879, 322, 304, 423, 723, 725]);
        // Appending after a delete exercises the renumbered provenance.
        s.append_row(tuple![777, "Jetta", 15200, 2005, 1000, "Good"])
            .unwrap();
        assert_matches_fresh(&mut s);
    }

    #[test]
    fn delete_where_uses_base_predicates() {
        let mut s = warm_grouped_sheet();
        let n = s
            .delete_where(&Expr::col("Model").eq(Expr::lit("Civic")))
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(s.last_delta(), &StateDelta::RowsDeleted { count: 3 });
        assert_matches_fresh(&mut s);
        assert_eq!(s.view().unwrap().len(), 6);
        assert!(matches!(
            s.delete_where(&Expr::col("Nope").eq(Expr::lit(1))),
            Err(SheetError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn update_in_place_keeps_row_position() {
        let mut s = warm_grouped_sheet();
        // Mileage drives nothing positional: Tier A in-place patch.
        let old = s.update_cell(0, "Mileage", Value::Int(75000)).unwrap();
        assert_eq!(old, Value::Int(76000));
        assert_eq!(s.last_delta(), &StateDelta::CellsUpdated { count: 1 });
        assert_matches_fresh(&mut s);
    }

    #[test]
    fn update_aggregate_input_recomputes_group() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Avg, "Mileage", 2).unwrap();
        s.view().unwrap();
        // Mileage feeds the aggregate but drives nothing positional:
        // still Tier A, with the touched group re-aggregated.
        s.update_cell(0, "Mileage", Value::Int(0)).unwrap();
        assert_eq!(s.last_delta(), &StateDelta::CellsUpdated { count: 1 });
        assert_matches_fresh(&mut s);
    }

    #[test]
    fn update_grouping_key_moves_row() {
        let mut s = warm_grouped_sheet();
        // Model is a grouping key: delete + re-insert, old group's
        // aggregates narrow, new group's widen.
        s.update_cell(0, "Model", Value::str("Civic")).unwrap();
        assert_eq!(s.last_delta(), &StateDelta::CellsUpdated { count: 1 });
        assert_matches_fresh(&mut s);
        assert_eq!(
            ids(&mut s),
            vec![132, 304, 879, 322, 872, 901, 423, 723, 725]
        );
    }

    #[test]
    fn update_selection_column_can_revive_row() {
        let mut s = sheet();
        s.select(Expr::col("Price").lt(Expr::lit(15000))).unwrap();
        s.view().unwrap();
        assert_eq!(s.view().unwrap().len(), 2);
        // 872 (base row 1) is filtered out at 15000; drop its price.
        s.update_cell(1, "Price", Value::Int(14000)).unwrap();
        assert_matches_fresh(&mut s);
        assert_eq!(s.view().unwrap().len(), 3);
        // And the reverse: push a surviving row out.
        s.update_cell(0, "Price", Value::Int(20000)).unwrap();
        assert_matches_fresh(&mut s);
        assert_eq!(s.view().unwrap().len(), 2);
    }

    #[test]
    fn min_max_retraction_recomputes() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Min, "Price", 2).unwrap();
        s.aggregate(AggFunc::Max, "Price", 2).unwrap();
        s.view().unwrap();
        // Deleting the min-holder must re-derive the group's MIN.
        s.delete_rows(&[6]).unwrap(); // Civic 13500
        assert_matches_fresh(&mut s);
        let d = s.view().unwrap();
        assert_eq!(d.data.value_at(0, "Min_Price").unwrap(), &Value::Int(15000));
        // Updating the max-holder downward re-derives MAX.
        s.update_cell(5, "Price", Value::Int(100)).unwrap(); // Jetta 18000
        assert_matches_fresh(&mut s);
    }

    #[test]
    fn dedup_blocks_base_patch() {
        let mut s = sheet();
        s.dedup().unwrap();
        s.view().unwrap();
        s.append_row(tuple![999, "Jetta", 15500, 2005, 60000, "Good"])
            .unwrap();
        assert_eq!(
            s.last_delta(),
            &StateDelta::Full {
                reason: "duplicate elimination re-decides survivors"
            }
        );
        assert_matches_fresh(&mut s);
        assert_eq!(s.view().unwrap().len(), 10);
    }

    #[test]
    fn naive_engine_blocks_base_patch_but_stays_correct() {
        let mut s = warm_grouped_sheet();
        s.set_naive_eval(true);
        s.view().unwrap();
        s.append_row(tuple![999, "Jetta", 15500, 2005, 60000, "Good"])
            .unwrap();
        assert!(!s.last_delta().is_incremental());
        assert_eq!(s.view().unwrap().len(), 10);
    }

    #[test]
    fn explain_surfaces_last_delta() {
        let mut s = warm_grouped_sheet();
        s.append_row(tuple![999, "Jetta", 15500, 2005, 60000, "Good"])
            .unwrap();
        assert!(s
            .explain()
            .unwrap()
            .contains("last delta: rows appended (1)"));
        s.dedup().unwrap();
        s.view().unwrap();
        s.append_row(tuple![998, "Jetta", 15600, 2005, 60000, "Good"])
            .unwrap();
        assert!(s
            .explain()
            .unwrap()
            .contains("last delta: full (duplicate elimination re-decides survivors)"));
    }

    #[test]
    fn failed_append_is_a_no_op() {
        let mut s = warm_grouped_sheet();
        let before = s.base().clone();
        // Wrong arity: refused by the relation layer before any patch.
        assert!(s.append_row(tuple![1, "Only-two"]).is_err());
        assert_eq!(s.base(), &before);
        assert_matches_fresh(&mut s);
    }

    #[test]
    fn stale_cache_is_warmed_before_patching() {
        let mut s = warm_grouped_sheet();
        // Edit the state but do NOT view: the cached entry is stale.
        s.select(Expr::col("Price").lt(Expr::lit(17000))).unwrap();
        s.append_row(tuple![999, "Jetta", 15500, 2005, 60000, "Good"])
            .unwrap();
        assert_eq!(s.last_delta(), &StateDelta::RowsAppended { count: 1 });
        assert_matches_fresh(&mut s);
        assert_eq!(s.view().unwrap().len(), 7);
    }

    #[test]
    fn sum_overflow_surfaces_on_append() {
        use ssa_relation::schema::Schema;
        let r = Relation::with_rows(
            "big",
            Schema::of(&[("K", ValueType::Str), ("V", ValueType::Int)]),
            vec![tuple!["a", i64::MAX], tuple!["a", 0]],
        )
        .unwrap();
        let mut s = Spreadsheet::over(r);
        s.group_add(&["K"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Sum, "V", 2).unwrap();
        s.view().unwrap();
        // The appended 1 overflows the all-int SUM — same error the full
        // evaluator raises, and the failed append must roll back.
        let err = s.append_row(tuple!["a", 1i64]).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
        assert_eq!(s.base().len(), 2);
        assert_matches_fresh(&mut s);
        // A float lands the group in float territory: no overflow.
        s.append_row(tuple!["a", 0.5f64]).unwrap();
        assert_matches_fresh(&mut s);
    }

    #[test]
    fn incremental_off_falls_back_on_base_edits() {
        let mut s = warm_grouped_sheet();
        s.set_incremental(false);
        s.append_row(tuple![999, "Jetta", 15500, 2005, 60000, "Good"])
            .unwrap();
        assert_eq!(
            s.last_delta(),
            &StateDelta::Full {
                reason: "incremental paths disabled"
            }
        );
        assert_eq!(s.view().unwrap().len(), 10);
    }
}
