//! The [`Spreadsheet`] — `S = (R, C, G, O)` — and every algebra operator
//! of Sec. III as a method.
//!
//! A `Spreadsheet` holds the base data `R` as of the most recent *point of
//! non-commutativity* (initially the base relation, Def. 2) plus the
//! modifiable [`QueryState`] accumulated since. Unary operators edit the
//! state; binary operators evaluate the current sheet, combine it with a
//! stored sheet, and start a fresh state epoch (selections and DE are
//! consumed; computed columns, projections, grouping and ordering carry
//! over and keep auto-updating).

use crate::computed::ComputedColumn;
use crate::error::{Result, SheetError};
use crate::eval::{evaluate_full_with, evaluate_with, visible_columns, Derived, EvalOptions};
use crate::spec::{Direction, GroupLevel, OrderKey, Spec};
use crate::state::{QueryState, SelectionEntry};
use crate::tree::build_tree;
use ssa_relation::{ops, AggFunc, Expr, Relation, Value, ValueType};
use std::collections::{BTreeMap, BTreeSet};

/// A snapshot of a spreadsheet produced by the **Save** operator
/// (Sec. III-C). Binary operators take a stored sheet as their right
/// operand; **Open** turns one back into a live [`Spreadsheet`].
///
/// The snapshot freezes the sheet's *data*: selections and duplicate
/// elimination are applied, computed columns are dropped from the data
/// (they "do not participate", Sec. III-B) but their definitions are kept
/// so re-opening restores them.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSheet {
    pub name: String,
    /// Evaluated `R` — all base columns (hidden ones included), filtered
    /// and deduplicated as of the save.
    pub relation: Relation,
    /// The surviving state: computed definitions, projections, grouping
    /// and ordering. Selections/DE are cleared (already applied).
    pub state: QueryState,
}

impl StoredSheet {
    /// Serialize to JSON (the reproduction's stand-in for the prototype's
    /// saved sheets).
    pub fn to_json(&self) -> Result<String> {
        Ok(crate::persist::stored_sheet_to_json(self))
    }

    pub fn from_json(text: &str) -> Result<StoredSheet> {
        crate::persist::stored_sheet_from_json(text)
    }
}

/// Fingerprint of the state components that determine the *content* of
/// the evaluated multiset. Grouping, ordering and projection are pure
/// data-*organization* ("they do not change the actual content",
/// Sec. III-A) — when only those change, a cached evaluation can be
/// reorganized instead of recomputed.
#[derive(Debug, Clone, PartialEq)]
struct ContentKey {
    selections: Vec<SelectionEntry>,
    computed: Vec<ComputedColumn>,
    dedup: bool,
}

impl ContentKey {
    fn of(state: &QueryState) -> ContentKey {
        ContentKey {
            selections: state.selections.clone(),
            computed: state.computed.clone(),
            dedup: state.dedup,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    derived: Derived,
    /// The evaluated multiset in canonical (base-insertion) order — what
    /// the reorganize fast path re-sorts, so tie-breaking is identical to
    /// a from-scratch evaluation.
    canonical: Relation,
    content: ContentKey,
    spec: Spec,
    /// Per-column dense ranks of `canonical`'s rows (rank preserves
    /// `Value` order, ties share a rank). Computed lazily the first time
    /// a column participates in a reorganize, then reused: repeated
    /// regrouping/reordering over the same content sorts `u32` keys
    /// instead of re-comparing `Value`s.
    sort_keys: BTreeMap<String, Vec<u32>>,
}

impl CacheEntry {
    fn new(derived: Derived, canonical: Relation, content: ContentKey, spec: Spec) -> CacheEntry {
        CacheEntry {
            derived,
            canonical,
            content,
            spec,
            sort_keys: BTreeMap::new(),
        }
    }

    /// Order-preserving sort keys for `column` over the canonical rows
    /// (equal values share a key), cached.
    fn ranks_for(&mut self, column: &str) -> Result<&Vec<u32>> {
        if !self.sort_keys.contains_key(column) {
            let idx = self.canonical.schema().index_of(column)?;
            let rows = self.canonical.rows();
            // Fast path for string columns: keys come straight from the
            // interner's lexicographic rank snapshot — one O(1) lookup
            // per row, no row sort, no string comparisons. Same symbol ⇒
            // same key and rank order ⇒ lexicographic order, so the keys
            // satisfy the same contract as dense ranks.
            let all_str =
                !rows.is_empty() && rows.iter().all(|t| matches!(t.get(idx), Value::Str(_)));
            let ranks = if all_str {
                let snap = ssa_relation::intern::rank_snapshot();
                rows.iter()
                    .map(|t| match t.get(idx) {
                        Value::Str(s) => snap[s.id() as usize],
                        _ => unreachable!("checked all-string above"),
                    })
                    .collect()
            } else {
                let mut order: Vec<u32> = (0..rows.len() as u32).collect();
                order.sort_by(|&a, &b| rows[a as usize].get(idx).cmp(rows[b as usize].get(idx)));
                let mut ranks = vec![0u32; rows.len()];
                let mut rank = 0u32;
                for (i, &row) in order.iter().enumerate() {
                    if i > 0 && rows[row as usize].get(idx) != rows[order[i - 1] as usize].get(idx)
                    {
                        rank += 1;
                    }
                    ranks[row as usize] = rank;
                }
                ranks
            };
            self.sort_keys.insert(column.to_string(), ranks);
        }
        Ok(&self.sort_keys[column])
    }

    /// Reorganize the cached canonical data under `spec` using the
    /// rank cache: a stable index sort over `u32` rank keys, then one
    /// row gather. Produces exactly what a full evaluation's
    /// presentation sort would (dense ranks preserve `Value` order and
    /// stability preserves canonical tie-breaking).
    fn reorganize(&mut self, spec: &Spec, visible: Vec<String>) -> Result<()> {
        let mut columns: Vec<(String, bool)> = Vec::new();
        for level in &spec.levels {
            let desc = matches!(level.direction, Direction::Desc);
            for a in &level.basis {
                columns.push((a.clone(), desc));
            }
        }
        for k in &spec.finest_order {
            columns.push((k.attribute.clone(), matches!(k.direction, Direction::Desc)));
        }
        for (name, _) in &columns {
            self.ranks_for(name)?;
        }
        let keys: Vec<(&Vec<u32>, bool)> = columns
            .iter()
            .map(|(name, desc)| (&self.sort_keys[name], *desc))
            .collect();
        let mut perm: Vec<u32> = (0..self.canonical.len() as u32).collect();
        perm.sort_by(|&a, &b| {
            for (ranks, desc) in &keys {
                let ord = ranks[a as usize].cmp(&ranks[b as usize]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let data = self.canonical.take_rows(&perm);
        let level_bases: Vec<Vec<String>> = spec.levels.iter().map(|l| l.basis.clone()).collect();
        let tree = build_tree(&data, &level_bases);
        self.derived = Derived {
            data,
            tree,
            visible,
        };
        self.spec = spec.clone();
        Ok(())
    }
}

/// A live spreadsheet.
#[derive(Debug, Clone)]
pub struct Spreadsheet {
    name: String,
    base: Relation,
    state: QueryState,
    /// Cached evaluation; reorganized in place when only `G`/`O`/`C`
    /// changed, recomputed when the content-determining state changed,
    /// dropped when the base data changed.
    cache: Option<CacheEntry>,
    /// Whether the reorganize fast path is enabled (on by default; the
    /// `reorganize` bench ablates it).
    fast_reorganize: bool,
    /// Engine selection and parallelism knobs passed to every
    /// evaluation.
    eval_opts: EvalOptions,
    /// How many points of non-commutativity this sheet has passed.
    epoch: u64,
    next_formula_id: u64,
}

impl Spreadsheet {
    /// The base spreadsheet `S^0(R, C^0, ∅, ∅)` over a relation (Def. 2).
    pub fn over(relation: Relation) -> Spreadsheet {
        Spreadsheet {
            name: relation.name().to_string(),
            base: relation,
            state: QueryState::new(),
            cache: None,
            fast_reorganize: true,
            eval_opts: EvalOptions::default(),
            epoch: 0,
            next_formula_id: 1,
        }
    }

    /// Enable/disable the fast reorganize path (for ablation benches; the
    /// result is identical either way, which `view` tests pin).
    pub fn set_fast_reorganize(&mut self, on: bool) {
        self.fast_reorganize = on;
    }

    /// Switch between the index-vector engine (default) and the naive
    /// row-cloning engine. The cache is dropped so the next `view`
    /// evaluates with the selected engine.
    pub fn set_naive_eval(&mut self, naive: bool) {
        if self.eval_opts.naive != naive {
            self.eval_opts.naive = naive;
            self.cache = None;
        }
    }

    /// Set the live-row count at which the index-vector engine
    /// parallelizes (`usize::MAX` forces sequential evaluation).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.eval_opts.parallel_threshold = threshold;
    }

    /// The engine options currently in force.
    pub fn eval_options(&self) -> EvalOptions {
        self.eval_opts
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The current query state (read-only; operators mutate it).
    pub fn state(&self) -> &QueryState {
        &self.state
    }

    /// The base data of the current epoch.
    pub fn base(&self) -> &Relation {
        &self.base
    }

    /// Number of binary-operator applications (points of
    /// non-commutativity) in this sheet's history.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Evaluate and return the derived view.
    ///
    /// Three paths, cheapest first:
    /// 1. the cache is current → return it;
    /// 2. only organization changed (grouping/ordering/projection) and
    ///    the fast path is on → re-sort the cached data, rebuild the
    ///    group tree and the visible list;
    /// 3. otherwise run the full canonical evaluation.
    pub fn view(&mut self) -> Result<&Derived> {
        let content = ContentKey::of(&self.state);
        let visible = visible_columns(&self.base, &self.state);
        let reusable = self.cache.as_ref().is_some_and(|c| c.content == content);
        if reusable {
            let entry = self.cache.as_mut().expect("checked above");
            if entry.spec != self.state.spec || entry.derived.visible != visible {
                if !self.fast_reorganize {
                    let (derived, canonical) =
                        evaluate_full_with(&self.base, &self.state, self.eval_opts)?;
                    self.cache = Some(CacheEntry::new(
                        derived,
                        canonical,
                        content,
                        self.state.spec.clone(),
                    ));
                } else {
                    // Fast path: content is unchanged; re-sort from the
                    // canonical order via the cached per-column ranks
                    // and rebuild tree + visible list.
                    entry.reorganize(&self.state.spec, visible)?;
                }
            }
        } else {
            let (derived, canonical) = evaluate_full_with(&self.base, &self.state, self.eval_opts)?;
            self.cache = Some(CacheEntry::new(
                derived,
                canonical,
                content,
                self.state.spec.clone(),
            ));
        }
        Ok(&self.cache.as_ref().expect("cache just filled").derived)
    }

    /// Evaluate without caching (for read-only contexts).
    pub fn evaluate_now(&self) -> Result<Derived> {
        evaluate_with(&self.base, &self.state, self.eval_opts)
    }

    /// Visible column names in display order (cheap; no evaluation).
    pub fn visible(&self) -> Vec<String> {
        visible_columns(&self.base, &self.state)
    }

    /// Every column name that exists (base + computed), hidden or not.
    pub fn all_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .base
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        out.extend(self.state.computed.iter().map(|c| c.name.clone()));
        out
    }

    /// Called by every state-editing operator. The cache is kept: `view`
    /// compares content keys and either reuses, reorganizes or fully
    /// re-evaluates. Base-data changes call [`Self::invalidate_base`].
    fn invalidate(&mut self) {}

    /// Hard invalidation for operations that change the base data
    /// (binary operators, rename, restore).
    fn invalidate_base(&mut self) {
        self.cache = None;
    }

    fn assert_column_exists(&self, name: &str) -> Result<()> {
        if self.base.schema().contains(name) || self.state.is_computed(name) {
            Ok(())
        } else {
            Err(SheetError::UnknownColumn {
                name: name.to_string(),
            })
        }
    }

    // ------------------------------------------------------------------
    // Data organization operators (Sec. III-A)
    // ------------------------------------------------------------------

    /// τ — grouping (Def. 3). `grouping_basis` is the *absolute* basis of
    /// the new finest level and must strictly extend the current finest
    /// basis ("a new level of grouping is created when and only when
    /// grouping-basis contains a superset of attributes of any existing
    /// grouping basis"). The newly grouped attributes leave the finest
    /// ordering list (`o_L = L − grouping-basis`).
    pub fn group(&mut self, grouping_basis: &[&str], order: Direction) -> Result<()> {
        for a in grouping_basis {
            self.assert_column_exists(a)?;
        }
        let current: BTreeSet<String> = self.state.spec.all_grouping_attributes();
        let requested: BTreeSet<String> = grouping_basis.iter().map(|s| s.to_string()).collect();
        if !requested.is_superset(&current) || requested == current {
            return Err(SheetError::NotASuperset {
                basis: grouping_basis.iter().map(|s| s.to_string()).collect(),
            });
        }
        let relative: Vec<String> = requested.difference(&current).cloned().collect();
        self.state
            .spec
            .levels
            .push(GroupLevel::new(relative.clone(), order));
        self.state.spec.subtract_from_finest_order(&relative);
        self.invalidate();
        Ok(())
    }

    /// Convenience: add `attributes` as a new innermost grouping level
    /// (the interface's "add to the existing grouping" choice,
    /// Sec. VI-A).
    pub fn group_add(&mut self, attributes: &[&str], order: Direction) -> Result<()> {
        let mut absolute: Vec<String> = self
            .state
            .spec
            .all_grouping_attributes()
            .into_iter()
            .collect();
        absolute.extend(attributes.iter().map(|s| s.to_string()));
        let refs: Vec<&str> = absolute.iter().map(|s| s.as_str()).collect();
        self.group(&refs, order)
    }

    /// The interface's other choice: "destroy the current grouping and use
    /// this new one instead" — refused while aggregates depend on the
    /// current grouping.
    pub fn regroup(&mut self, attributes: &[&str], order: Direction) -> Result<()> {
        let aggs = self.state.aggregates_below_level(1);
        if !aggs.is_empty() {
            return Err(SheetError::GroupingInUse {
                level: 1,
                aggregates: aggs,
            });
        }
        for a in attributes {
            self.assert_column_exists(a)?;
        }
        self.state.spec.levels.clear();
        self.state
            .spec
            .levels
            .push(GroupLevel::new(attributes.iter().copied(), order));
        let grouped: Vec<String> = attributes.iter().map(|s| s.to_string()).collect();
        self.state.spec.subtract_from_finest_order(&grouped);
        self.invalidate();
        Ok(())
    }

    /// Remove all grouping (refused while aggregates depend on it).
    pub fn ungroup(&mut self) -> Result<()> {
        let aggs = self.state.aggregates_below_level(1);
        if !aggs.is_empty() {
            return Err(SheetError::GroupingInUse {
                level: 1,
                aggregates: aggs,
            });
        }
        self.state.spec.levels.clear();
        self.invalidate();
        Ok(())
    }

    /// λ — ordering (Def. 4). Orders the contents of level-`l` groups by
    /// `attribute` (1-based levels; `l = level_count()` is the finest).
    ///
    /// * Case 2 — `attribute` is the relative basis of level `l+1`: only
    ///   the direction of those groups changes.
    /// * Case 1 — any other attribute at an outer level: levels deeper
    ///   than `l` are destroyed and `attribute` becomes the new finest
    ///   ordering. Refused (as in the prototype) while aggregates depend
    ///   on the doomed levels.
    /// * Case 3 — finest level: ordering by a grouping attribute is a
    ///   no-op; otherwise the attribute's direction is updated in place or
    ///   appended to the finest ordering list.
    pub fn order(&mut self, attribute: &str, direction: Direction, level: usize) -> Result<()> {
        self.assert_column_exists(attribute)?;
        let n = self.state.spec.level_count();
        if level == 0 || level > n {
            return Err(SheetError::NoSuchLevel { level, levels: n });
        }
        if level < n {
            if self.state.spec.in_relative_basis(attribute, level + 1) {
                // Case 2: flip direction of the level-(l+1) groups.
                self.state.spec.levels[level - 1].direction = direction;
            } else {
                if self
                    .state
                    .spec
                    .all_grouping_attributes()
                    .contains(attribute)
                {
                    // Ordering an outer level by some *other* level's
                    // grouping attribute is meaningless.
                    return Err(SheetError::BadOrderingAttribute {
                        attribute: attribute.to_string(),
                        level,
                    });
                }
                // Case 1: destroy deeper levels.
                let aggs = self.state.aggregates_below_level(level);
                if !aggs.is_empty() {
                    return Err(SheetError::GroupingInUse {
                        level,
                        aggregates: aggs,
                    });
                }
                self.state.spec.truncate_levels(level);
                self.state.spec.finest_order = vec![OrderKey::new(attribute, direction)];
            }
        } else {
            // Case 3: the finest level.
            if self
                .state
                .spec
                .all_grouping_attributes()
                .contains(attribute)
            {
                // No-op: all tuples in a finest group share this value.
                return Ok(());
            }
            match self
                .state
                .spec
                .finest_order
                .iter_mut()
                .find(|k| k.attribute == attribute)
            {
                Some(k) => k.direction = direction,
                None => self
                    .state
                    .spec
                    .finest_order
                    .push(OrderKey::new(attribute, direction)),
            }
        }
        self.invalidate();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data manipulation operators (Sec. III-B)
    // ------------------------------------------------------------------

    /// σ — selection (Def. 5). Returns the id of the retained predicate,
    /// which query modification can later replace or delete (Sec. V-B).
    pub fn select(&mut self, predicate: Expr) -> Result<u64> {
        for col in predicate.columns() {
            self.assert_column_exists(&col)?;
        }
        let id = self.state.add_selection(predicate);
        self.invalidate();
        Ok(id)
    }

    /// π — projection (Def. 6): remove one column from `C`.
    ///
    /// * A **base** column is merely hidden (`R` is untouched) and can be
    ///   reinstated (Sec. V-B's inverse projection).
    /// * A **computed** column's definition is removed outright — this is
    ///   how the paper frees a grouping from its aggregates ("the
    ///   aggregates have to be projected out", Sec. III-A) — refused while
    ///   other state depends on it.
    pub fn project_out(&mut self, column: &str) -> Result<()> {
        self.assert_column_exists(column)?;
        if self.state.is_computed(column) {
            let dependents = self.state.dependents_of(column);
            if !dependents.is_empty() {
                return Err(SheetError::ColumnInUse {
                    name: column.to_string(),
                    dependents,
                });
            }
            self.state.computed.retain(|c| c.name != column);
            self.state.projected_out.remove(column);
        } else {
            if self.state.projected_out.contains(column) {
                return Err(SheetError::ColumnHidden {
                    name: column.to_string(),
                });
            }
            self.state.projected_out.insert(column.to_string());
        }
        self.invalidate();
        Ok(())
    }

    /// Inverse projection Π̄ (Sec. V-B): reinstate a hidden base column as
    /// if the projection never took place.
    pub fn reinstate(&mut self, column: &str) -> Result<()> {
        if !self.state.projected_out.remove(column) {
            return Err(SheetError::UnknownColumn {
                name: column.to_string(),
            });
        }
        self.invalidate();
        Ok(())
    }

    /// η — aggregation (Def. 11): creates a computed column holding
    /// `func(column)` per level-`level` group, value repeated on every row
    /// of the group. Returns the generated column name (`Avg_Price`
    /// style, Table III).
    pub fn aggregate(&mut self, func: AggFunc, column: &str, level: usize) -> Result<String> {
        self.assert_column_exists(column)?;
        let n = self.state.spec.level_count();
        if level == 0 || level > n {
            return Err(SheetError::NoSuchLevel { level, levels: n });
        }
        if func.requires_numeric() {
            // Base columns expose a static type; computed columns are
            // checked against their current materialization.
            let numeric = if let Ok(c) = self.base.schema().column(column) {
                c.ty.is_numeric() || c.ty == ValueType::Null
            } else {
                let d = self.evaluate_now()?;
                d.data
                    .schema()
                    .column(column)
                    .map(|c| c.ty.is_numeric() || c.ty == ValueType::Null)
                    .unwrap_or(false)
            };
            if !numeric {
                return Err(SheetError::NonNumericAggregate {
                    func: func.short_name().to_string(),
                    column: column.to_string(),
                });
            }
        }
        let name = self.fresh_column_name(&format!("{}_{}", func.short_name(), column));
        let basis: Vec<String> = self.state.spec.absolute_basis(level).into_iter().collect();
        self.state.computed.push(ComputedColumn::aggregate(
            name.clone(),
            func,
            column,
            level,
            basis,
        ));
        self.invalidate();
        Ok(name)
    }

    /// θ — formula computation (Def. 12): a row-wise computed column. With
    /// no name given the system generates one and "reminds the user of the
    /// new column" (Sec. VI-A). Returns the column name.
    pub fn formula(&mut self, name: Option<&str>, expr: Expr) -> Result<String> {
        for col in expr.columns() {
            self.assert_column_exists(&col)?;
        }
        let name = match name {
            Some(n) => {
                if self.base.schema().contains(n) || self.state.is_computed(n) {
                    return Err(SheetError::DuplicateColumn {
                        name: n.to_string(),
                    });
                }
                n.to_string()
            }
            None => {
                let n = self.fresh_column_name(&format!("F{}", self.next_formula_id));
                self.next_formula_id += 1;
                n
            }
        };
        self.state
            .computed
            .push(ComputedColumn::formula(name.clone(), expr));
        self.invalidate();
        Ok(name)
    }

    /// DE — duplicate elimination (Def. 13): removes duplicate `R`-tuples.
    /// Idempotent; computed columns recompute automatically.
    pub fn dedup(&mut self) -> Result<()> {
        self.state.dedup = true;
        self.invalidate();
        Ok(())
    }

    /// Housekeeping **Rename** (Sec. III-C): renames a column everywhere —
    /// data, computed definitions, predicates, grouping and ordering.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        self.assert_column_exists(from)?;
        if from == to {
            return Ok(());
        }
        if self.base.schema().contains(to) || self.state.is_computed(to) {
            return Err(SheetError::DuplicateColumn {
                name: to.to_string(),
            });
        }
        if self.base.schema().contains(from) {
            self.base.schema_mut().rename(from, to)?;
        }
        self.state.rename_column(from, to);
        self.invalidate_base();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Binary operators (points of non-commutativity)
    // ------------------------------------------------------------------

    /// **Save** (Sec. III-C): snapshot this sheet for later binary
    /// operations or re-opening. The current sheet is unaffected.
    pub fn save(&self, name: impl Into<String>) -> Result<StoredSheet> {
        let derived = self.evaluate_now()?;
        // Keep only R's columns (computed ones do not participate in
        // binary operators).
        let mut relation = derived.data;
        for c in &self.state.computed {
            relation.drop_column(&c.name)?;
        }
        relation.set_name(self.name.clone());
        let mut state = self.state.clone();
        state.consume_at_non_commutativity_point();
        Ok(StoredSheet {
            name: name.into(),
            relation,
            state,
        })
    }

    /// **Open** (Sec. III-C): resurrect a stored sheet as the current one.
    pub fn open(stored: &StoredSheet) -> Spreadsheet {
        Spreadsheet {
            name: stored.relation.name().to_string(),
            base: stored.relation.clone(),
            state: stored.state.clone(),
            cache: None,
            fast_reorganize: true,
            eval_opts: EvalOptions::default(),
            epoch: 0,
            next_formula_id: 1,
        }
    }

    /// The current evaluated `R` (selections and DE applied, computed
    /// columns dropped) — the left operand every binary operator consumes.
    fn evaluated_r(&self) -> Result<Relation> {
        let derived = self.evaluate_now()?;
        let mut r = derived.data;
        for c in &self.state.computed {
            r.drop_column(&c.name)?;
        }
        r.set_name(self.name.clone());
        Ok(r)
    }

    fn enter_new_epoch(&mut self, new_base: Relation) -> Result<()> {
        self.base = new_base;
        self.state.consume_at_non_commutativity_point();
        // State referencing columns that vanished (set ops keep schema;
        // product/join only add) would fail evaluation — validate eagerly.
        let cols: BTreeSet<String> = self
            .base
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for c in self.state.referenced_columns() {
            if !cols.contains(&c) && !self.state.is_computed(&c) {
                return Err(SheetError::UnknownColumn { name: c });
            }
        }
        self.epoch += 1;
        self.invalidate_base();
        Ok(())
    }

    /// × — Cartesian product with a stored sheet (Def. 7). Grouping,
    /// ordering, computed definitions and projections of the *current*
    /// sheet are retained and recompute over the product.
    pub fn product(&mut self, stored: &StoredSheet) -> Result<()> {
        let left = self.evaluated_r()?;
        let combined = ops::product(&left, &stored.relation)?;
        self.enter_new_epoch(combined)
    }

    /// ⋈ — join with a stored sheet on `condition` (Def. 10). The
    /// condition may reference columns of both operands; clashing right
    /// names are prefixed with the stored relation's name.
    pub fn join(&mut self, stored: &StoredSheet, condition: Expr) -> Result<()> {
        let left = self.evaluated_r()?;
        // Validate the condition against the combined schema before
        // running the join, so the user gets an immediate report
        // (Sec. VI-A "any invalid condition is reported immediately").
        let combined_schema = left
            .schema()
            .product(stored.relation.schema(), stored.relation.name());
        for c in condition.columns() {
            if !combined_schema.contains(&c) {
                return Err(SheetError::UnknownColumn { name: c });
            }
        }
        let joined = ops::join(&left, &stored.relation, &condition)?;
        self.enter_new_epoch(joined)
    }

    /// ∪ — multiset union with a stored sheet (Def. 8).
    pub fn union(&mut self, stored: &StoredSheet) -> Result<()> {
        let left = self.evaluated_r()?;
        let unioned = ops::union_all(&left, &stored.relation).map_err(|e| match e {
            ssa_relation::RelationError::NotUnionCompatible { left, right } => {
                SheetError::NotCompatible {
                    detail: format!("{left} vs {right}"),
                }
            }
            other => other.into(),
        })?;
        self.enter_new_epoch(unioned)
    }

    /// − — multiset difference with a stored sheet (Def. 9):
    /// `{t, t} − {t} = {t}`.
    pub fn difference(&mut self, stored: &StoredSheet) -> Result<()> {
        let left = self.evaluated_r()?;
        let diffed = ops::difference(&left, &stored.relation).map_err(|e| match e {
            ssa_relation::RelationError::NotUnionCompatible { left, right } => {
                SheetError::NotCompatible {
                    detail: format!("{left} vs {right}"),
                }
            }
            other => other.into(),
        })?;
        self.enter_new_epoch(diffed)
    }

    // ------------------------------------------------------------------
    // Query modification (Sec. V) — state-level edits
    // ------------------------------------------------------------------

    /// Replace the predicate of a retained selection ("change previous
    /// condition of Year = 2005 to Year = 2006", Tables IV–V).
    pub fn replace_selection(&mut self, id: u64, predicate: Expr) -> Result<()> {
        for col in predicate.columns() {
            self.assert_column_exists(&col)?;
        }
        if !self.state.replace_selection(id, predicate) {
            return Err(SheetError::UnknownSelection { id });
        }
        self.invalidate();
        Ok(())
    }

    /// Delete a retained selection outright.
    pub fn remove_selection(&mut self, id: u64) -> Result<()> {
        self.state
            .remove_selection(id)
            .ok_or(SheetError::UnknownSelection { id })?;
        self.invalidate();
        Ok(())
    }

    /// Remove an aggregate/FC column through query state (same dependency
    /// rule as projection of a computed column).
    pub fn remove_computed(&mut self, name: &str) -> Result<()> {
        if !self.state.is_computed(name) {
            return Err(SheetError::UnknownColumn {
                name: name.to_string(),
            });
        }
        let dependents = self.state.dependents_of(name);
        if !dependents.is_empty() {
            return Err(SheetError::ColumnInUse {
                name: name.to_string(),
                dependents,
            });
        }
        self.state.computed.retain(|c| c.name != name);
        self.state.projected_out.remove(name);
        self.invalidate();
        Ok(())
    }

    // ------------------------------------------------------------------

    fn fresh_column_name(&self, base: &str) -> String {
        let exists = |n: &str| self.base.schema().contains(n) || self.state.is_computed(n);
        if !exists(base) {
            return base.to_string();
        }
        let mut i = 2;
        loop {
            let candidate = format!("{base}_{i}");
            if !exists(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Restore from a raw snapshot (used by the history/undo machinery).
    pub(crate) fn restore(&mut self, base: Relation, state: QueryState, epoch: u64) {
        self.base = base;
        self.state = state;
        self.epoch = epoch;
        self.invalidate_base();
    }

    /// Raw snapshot of the sheet's defining data (for undo).
    pub(crate) fn snapshot(&self) -> (Relation, QueryState, u64) {
        (self.base.clone(), self.state.clone(), self.epoch)
    }

    /// Crate-private mutable state access for the cascaded-modification
    /// module; `view` re-validates against the content key afterwards.
    pub(crate) fn state_mut_for_modify(&mut self) -> &mut QueryState {
        &mut self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{dealers, used_cars};
    use ssa_relation::Value;

    fn sheet() -> Spreadsheet {
        Spreadsheet::over(used_cars())
    }

    fn ids(s: &mut Spreadsheet) -> Vec<i64> {
        s.view()
            .unwrap()
            .data
            .column_values("ID")
            .unwrap()
            .into_iter()
            .map(|v| match v {
                Value::Int(i) => i,
                other => panic!("unexpected {other}"),
            })
            .collect()
    }

    #[test]
    fn base_spreadsheet_shows_everything() {
        let mut s = sheet();
        assert_eq!(s.view().unwrap().len(), 9);
        assert_eq!(s.visible().len(), 6);
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn grouping_requires_strict_superset() {
        let mut s = sheet();
        s.group(&["Model"], Direction::Desc).unwrap();
        // same set again: not a strict extension
        assert!(matches!(
            s.group(&["Model"], Direction::Asc),
            Err(SheetError::NotASuperset { .. })
        ));
        // non-superset
        assert!(matches!(
            s.group(&["Year"], Direction::Asc),
            Err(SheetError::NotASuperset { .. })
        ));
        // proper extension works
        s.group(&["Model", "Year"], Direction::Asc).unwrap();
        assert_eq!(s.state().spec.level_count(), 3);
    }

    #[test]
    fn group_add_extends_innermost() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        assert_eq!(s.state().spec.level_count(), 3);
        assert!(s.state().spec.in_relative_basis("Year", 3));
    }

    #[test]
    fn grouping_removes_attribute_from_finest_order() {
        let mut s = sheet();
        s.order("Condition", Direction::Asc, 1).unwrap();
        s.order("Price", Direction::Asc, 1).unwrap();
        assert_eq!(s.state().spec.finest_order.len(), 2);
        s.group_add(&["Condition"], Direction::Asc).unwrap();
        // Condition moved into grouping; Price stays an order key.
        assert_eq!(s.state().spec.finest_order.len(), 1);
        assert_eq!(s.state().spec.finest_order[0].attribute, "Price");
    }

    #[test]
    fn table_ii_grouping_by_condition() {
        // Example 1: from Table I's arrangement, group additionally by
        // Condition ASC → Table II.
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.order("Price", Direction::Asc, 3).unwrap();
        s.group(&["Year", "Model", "Condition"], Direction::Asc)
            .unwrap();
        assert_eq!(
            ids(&mut s),
            vec![872, 901, 304, 723, 725, 423, 132, 879, 322]
        );
    }

    #[test]
    fn ordering_case2_flips_group_direction() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        // Year is the relative basis of level 3; ordering level 2 by Year
        // flips those groups.
        s.order("Year", Direction::Desc, 2).unwrap();
        assert_eq!(s.state().spec.levels[1].direction, Direction::Desc);
        assert_eq!(s.state().spec.level_count(), 3);
        let first_ids = ids(&mut s);
        // Jetta 2006 cars come before Jetta 2005 now.
        assert_eq!(first_ids[0], 423);
    }

    #[test]
    fn ordering_case1_destroys_deeper_levels() {
        // Example 2: ordering level-2 groups by Mileage destroys level 3.
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.order("Mileage", Direction::Asc, 2).unwrap();
        assert_eq!(s.state().spec.level_count(), 2);
        assert_eq!(s.state().spec.finest_order[0].attribute, "Mileage");
    }

    #[test]
    fn ordering_case1_refused_with_dependent_aggregates() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Desc).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 3).unwrap();
        let err = s.order("Mileage", Direction::Asc, 2).unwrap_err();
        assert!(matches!(err, SheetError::GroupingInUse { level: 2, .. }));
        // project the aggregate out, then it works
        s.project_out("Avg_Price").unwrap();
        s.order("Mileage", Direction::Asc, 2).unwrap();
    }

    #[test]
    fn ordering_case3_append_update_noop() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.order("Price", Direction::Asc, 2).unwrap();
        s.order("Mileage", Direction::Desc, 2).unwrap();
        assert_eq!(s.state().spec.finest_order.len(), 2);
        // update in place
        s.order("Price", Direction::Desc, 2).unwrap();
        assert_eq!(s.state().spec.finest_order[0].direction, Direction::Desc);
        assert_eq!(s.state().spec.finest_order.len(), 2);
        // ordering by a grouping attribute at the finest level: no-op
        s.order("Model", Direction::Desc, 2).unwrap();
        assert_eq!(s.state().spec.finest_order.len(), 2);
    }

    #[test]
    fn ordering_level_bounds_checked() {
        let mut s = sheet();
        assert!(matches!(
            s.order("Price", Direction::Asc, 2),
            Err(SheetError::NoSuchLevel { .. })
        ));
        assert!(matches!(
            s.order("Price", Direction::Asc, 0),
            Err(SheetError::NoSuchLevel { .. })
        ));
    }

    #[test]
    fn selection_and_modification_tables_iv_v() {
        // Sam: Year = 2005, Model = Jetta, Mileage < 80000; grouped by
        // Condition, ordered by Price ASC → Table IV. Then modify the Year
        // predicate to 2006 → Table V.
        let mut s = sheet();
        let year_id = s.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
        s.select(Expr::col("Mileage").lt(Expr::lit(80000))).unwrap();
        s.group_add(&["Condition"], Direction::Asc).unwrap();
        s.order("Price", Direction::Asc, 2).unwrap();
        assert_eq!(ids(&mut s), vec![872, 901, 304]);
        s.replace_selection(year_id, Expr::col("Year").eq(Expr::lit(2006)))
            .unwrap();
        assert_eq!(ids(&mut s), vec![723, 725, 423]);
    }

    #[test]
    fn selections_listed_per_column() {
        let mut s = sheet();
        s.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        s.select(Expr::col("Price").lt(Expr::lit(16000))).unwrap();
        assert_eq!(s.state().selections_on("Year").len(), 1);
        assert_eq!(s.state().selections_on("Price").len(), 1);
        assert_eq!(s.state().selections_on("Model").len(), 0);
    }

    #[test]
    fn remove_selection_restores_rows() {
        let mut s = sheet();
        let id = s.select(Expr::col("Model").eq(Expr::lit("Civic"))).unwrap();
        assert_eq!(s.view().unwrap().len(), 3);
        s.remove_selection(id).unwrap();
        assert_eq!(s.view().unwrap().len(), 9);
        assert!(matches!(
            s.remove_selection(id),
            Err(SheetError::UnknownSelection { .. })
        ));
    }

    #[test]
    fn projection_hides_and_reinstates_base_columns() {
        let mut s = sheet();
        s.project_out("Mileage").unwrap();
        assert!(!s.visible().contains(&"Mileage".to_string()));
        // double projection is an error surfaced to the UI
        assert!(matches!(
            s.project_out("Mileage"),
            Err(SheetError::ColumnHidden { .. })
        ));
        s.reinstate("Mileage").unwrap();
        assert!(s.visible().contains(&"Mileage".to_string()));
        assert!(s.reinstate("Mileage").is_err());
    }

    #[test]
    fn projection_of_computed_column_removes_definition() {
        let mut s = sheet();
        let name = s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        assert_eq!(name, "Avg_Price");
        s.project_out(&name).unwrap();
        assert!(!s.state().is_computed(&name));
        // name can be reused afterwards
        let name2 = s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        assert_eq!(name2, "Avg_Price");
    }

    #[test]
    fn computed_column_with_dependents_cannot_be_removed() {
        let mut s = sheet();
        let avg = s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        s.select(Expr::col("Price").lt(Expr::col(&avg))).unwrap();
        assert!(matches!(
            s.project_out(&avg),
            Err(SheetError::ColumnInUse { .. })
        ));
        assert!(matches!(
            s.remove_computed(&avg),
            Err(SheetError::ColumnInUse { .. })
        ));
    }

    #[test]
    fn aggregate_names_uniquified() {
        let mut s = sheet();
        assert_eq!(s.aggregate(AggFunc::Avg, "Price", 1).unwrap(), "Avg_Price");
        assert_eq!(
            s.aggregate(AggFunc::Avg, "Price", 1).unwrap(),
            "Avg_Price_2"
        );
    }

    #[test]
    fn aggregate_rejects_non_numeric_and_bad_level() {
        let mut s = sheet();
        assert!(matches!(
            s.aggregate(AggFunc::Avg, "Model", 1),
            Err(SheetError::NonNumericAggregate { .. })
        ));
        assert!(matches!(
            s.aggregate(AggFunc::Avg, "Price", 2),
            Err(SheetError::NoSuchLevel { .. })
        ));
        // COUNT/MIN/MAX on strings are fine
        s.aggregate(AggFunc::Max, "Model", 1).unwrap();
    }

    #[test]
    fn formula_names_and_validation() {
        let mut s = sheet();
        let n1 = s
            .formula(None, Expr::col("Price").div(Expr::lit(1000)))
            .unwrap();
        assert_eq!(n1, "F1");
        let n2 = s
            .formula(Some("PriceK"), Expr::col("Price").div(Expr::lit(1000)))
            .unwrap();
        assert_eq!(n2, "PriceK");
        assert!(matches!(
            s.formula(Some("Price"), Expr::lit(1)),
            Err(SheetError::DuplicateColumn { .. })
        ));
        assert!(s.formula(None, Expr::col("Ghost")).is_err());
    }

    #[test]
    fn dedup_is_idempotent() {
        let mut s = sheet();
        s.project_out("ID").unwrap();
        s.dedup().unwrap();
        s.dedup().unwrap();
        // IDs are unique so R-tuples are all distinct: 9 rows remain.
        assert_eq!(s.view().unwrap().len(), 9);
    }

    #[test]
    fn rename_flows_through_state_and_data() {
        let mut s = sheet();
        s.select(Expr::col("Price").lt(Expr::lit(16000))).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        s.rename("Price", "Cost").unwrap();
        assert!(s.visible().contains(&"Cost".to_string()));
        assert_eq!(s.view().unwrap().len(), 4);
        // renaming to an existing name is rejected
        assert!(s.rename("Cost", "Year").is_err());
        assert!(s.rename("Ghost", "X").is_err());
        // rename a computed column (its generated name predates the
        // Price→Cost rename, so it is still Avg_Price)
        s.rename("Avg_Price", "AvgCost").unwrap();
        assert!(s.state().is_computed("AvgCost"));
    }

    #[test]
    fn save_open_round_trip() {
        let mut s = sheet();
        s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
        let stored = s.save("jettas").unwrap();
        assert_eq!(stored.relation.len(), 6);
        // computed column not materialized in stored data
        assert!(!stored.relation.schema().contains("Avg_Price"));
        // but its definition survives re-opening
        let mut reopened = Spreadsheet::open(&stored);
        let d = reopened.view().unwrap();
        assert!(d.data.schema().contains("Avg_Price"));
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn stored_sheet_json_round_trip() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        let stored = s.save("snapshot").unwrap();
        let json = stored.to_json().unwrap();
        let back = StoredSheet::from_json(&json).unwrap();
        assert_eq!(stored, back);
        assert!(StoredSheet::from_json("not json").is_err());
    }

    #[test]
    fn product_enters_new_epoch_and_keeps_presentation() {
        let mut s = sheet();
        s.select(Expr::col("Model").eq(Expr::lit("Civic"))).unwrap();
        s.group_add(&["Year"], Direction::Asc).unwrap();
        let dealers_sheet = Spreadsheet::over(dealers()).save("dealers").unwrap();
        s.product(&dealers_sheet).unwrap();
        assert_eq!(s.epoch(), 1);
        // selections consumed: 3 Civics × 3 dealers = 9 rows
        assert_eq!(s.view().unwrap().len(), 9);
        assert!(s.state().selections.is_empty());
        // grouping retained
        assert_eq!(s.state().spec.level_count(), 2);
        // clashing Model column prefixed
        assert!(s.view().unwrap().data.schema().contains("dealers.Model"));
    }

    #[test]
    fn join_validates_condition_eagerly() {
        let mut s = sheet();
        let stored = Spreadsheet::over(dealers()).save("dealers").unwrap();
        let err = s
            .join(&stored, Expr::col("Ghost").eq(Expr::col("Model")))
            .unwrap_err();
        assert!(matches!(err, SheetError::UnknownColumn { .. }));
        assert_eq!(s.epoch(), 0, "failed join must not change the sheet");
        s.join(&stored, Expr::col("Model").eq(Expr::col("dealers.Model")))
            .unwrap();
        // Jetta matches 1 dealer row, Civic matches 2: 6×1? No — Jetta rows
        // (6) × 1 match + Civic rows (3) × 2 matches = 12.
        assert_eq!(s.view().unwrap().len(), 12);
    }

    #[test]
    fn union_and_difference_multiset_semantics() {
        let mut jettas = sheet();
        jettas
            .select(Expr::col("Model").eq(Expr::lit("Jetta")))
            .unwrap();
        let stored_jettas = jettas.save("jettas").unwrap();

        let mut all = sheet();
        all.difference(&stored_jettas).unwrap();
        assert_eq!(all.view().unwrap().len(), 3); // the Civics

        let mut again = sheet();
        again.union(&stored_jettas).unwrap();
        assert_eq!(again.view().unwrap().len(), 15); // 9 + 6, duplicates kept

        // incompatible sheets refuse
        let stored_dealers = Spreadsheet::over(dealers()).save("dealers").unwrap();
        let mut s = sheet();
        assert!(matches!(
            s.union(&stored_dealers),
            Err(SheetError::NotCompatible { .. })
        ));
    }

    #[test]
    fn computed_columns_recompute_over_union_result() {
        // Def. 8: computed attributes are retained and recomputed based on
        // the new set membership.
        let mut civics = sheet();
        civics
            .select(Expr::col("Model").eq(Expr::lit("Civic")))
            .unwrap();
        let stored = civics.save("civics").unwrap();

        let mut s = sheet();
        s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
        s.aggregate(AggFunc::Count, "ID", 1).unwrap();
        {
            let d = s.view().unwrap();
            assert_eq!(d.data.value_at(0, "Count_ID").unwrap(), &Value::Int(6));
        }
        s.union(&stored).unwrap();
        let d = s.view().unwrap();
        assert_eq!(d.len(), 9);
        assert_eq!(d.data.value_at(0, "Count_ID").unwrap(), &Value::Int(9));
    }

    #[test]
    fn regroup_and_ungroup_guarded_by_aggregates() {
        let mut s = sheet();
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
        assert!(matches!(
            s.regroup(&["Year"], Direction::Asc),
            Err(SheetError::GroupingInUse { .. })
        ));
        assert!(matches!(s.ungroup(), Err(SheetError::GroupingInUse { .. })));
        s.project_out("Avg_Price").unwrap();
        s.regroup(&["Year"], Direction::Asc).unwrap();
        assert!(s.state().spec.in_relative_basis("Year", 2));
        s.ungroup().unwrap();
        assert_eq!(s.state().spec.level_count(), 1);
    }

    #[test]
    fn level_one_aggregate_survives_regroup() {
        let mut s = sheet();
        s.aggregate(AggFunc::Max, "Price", 1).unwrap();
        // level-1 aggregates don't depend on grouping
        s.group_add(&["Model"], Direction::Asc).unwrap();
        s.ungroup().unwrap();
        assert!(s.state().is_computed("Max_Price"));
    }
}
