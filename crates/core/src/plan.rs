//! The algebraic query planner: lowering into an explicit operator DAG
//! plus Theorem-2-sound rewrites (DESIGN.md §13).
//!
//! A [`Plan`] lowers one `(base, QueryState)` pair into the operator
//! pipeline both evaluation engines execute. On top of the paper's rank
//! assignment (Sec. IV-B precedence) it applies exactly the rewrites
//! Theorem 2 licenses:
//!
//! * **Filter fusion** — all selections of one rank see the same input
//!   multiset (unary operators of equal rank commute), so they run as a
//!   single fused pass instead of one pass each.
//! * **Cheap-first predicate ordering** — within a fused pass, predicates
//!   run cheapest and most selective first, using free statistics
//!   ([`Relation::row_count`], [`Relation::distinct_estimate`]). Sound
//!   for the same reason fusion is: same-rank selections commute.
//! * **Pre-dedup selection pushdown** — rank-0 selections reference base
//!   columns only, and duplicate `R`-tuples agree on every base column,
//!   so filtering *before* duplicate elimination keeps exactly the same
//!   surviving first occurrences while shrinking the dedup hash.
//! * **Deferred computed columns** — a computed column no selection
//!   (transitively) reads is not materialized during filtering at all;
//!   step 4 (automatic update) computes it once over the final, smaller
//!   multiset. Cheap predicates therefore run before expensive
//!   computed/formula columns.
//!
//! Rewrites never cross a *non-commutativity point*: a selection over a
//! computed column keeps that column's rank (precedence), and nothing is
//! ever pushed through union or difference — `σ(A − B) = σ(A) − B` holds
//! for left-side predicates but `A − σ(B)` does not (`{1} − σ_{x≠1}{1}`
//! is `∅`, not `{1}`), so the planner declines both directions.
//!
//! [`plan_tables`] extends the same machinery to multi-relation FROM
//! lists (the SQL side of Theorem 1): single-table conjuncts are pushed
//! below the joins into their operand, the join order is chosen greedily
//! by estimated output cardinality, and provenance columns restore the
//! unplanned left-deep nested-loop order bit for bit, so the rewritten
//! pipeline is observationally identical to the naive one.

use crate::computed::{column_rank, compute_ranks};
use crate::error::{Result, SheetError};
use crate::state::QueryState;
use ssa_relation::ops;
use ssa_relation::relation::Relation;
use ssa_relation::schema::{Column, Schema};
use ssa_relation::value::{Value, ValueType};
use ssa_relation::{CmpOp, Expr};
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// The operator DAG
// ---------------------------------------------------------------------

/// One node of the lowered operator DAG. Rendered by [`PlanNode::render`]
/// as an indented `EXPLAIN`-style tree; executed by the evaluation
/// engines (unary pipeline) and [`TablePlan::execute`] (join trees).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Base-data scan.
    Scan { name: String, rows: usize },
    /// Fused selection pass; predicates listed in execution order.
    Filter {
        predicates: Vec<Expr>,
        input: Box<PlanNode>,
    },
    /// Projection onto the visible columns.
    Project {
        columns: Vec<String>,
        input: Box<PlanNode>,
    },
    /// Computed-column materialization (formulas and aggregates).
    Compute {
        columns: Vec<String>,
        input: Box<PlanNode>,
    },
    /// Hash join; `condition = None` degenerates to a product of
    /// pre-filtered operands (all conjuncts were pushed down).
    Join {
        condition: Option<Expr>,
        est_rows: usize,
        left: Box<PlanNode>,
        right: Box<PlanNode>,
    },
    /// Cartesian product.
    Product {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
    },
    /// Multiset union (non-commutativity point; never rewritten across).
    Union {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
    },
    /// Multiset difference (order-sensitive; never rewritten across).
    Difference {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
    },
    /// Duplicate elimination over `R`-tuples.
    Distinct { input: Box<PlanNode> },
    /// Presentation sort (group bases outermost, then finest order).
    Sort {
        keys: Vec<(String, bool)>,
        input: Box<PlanNode>,
    },
    /// Group-tree construction over the sorted data.
    Group {
        levels: Vec<Vec<String>>,
        input: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Render the subtree as an indented text tree, root first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(out, "{}", self.describe());
        for child in self.children() {
            child.render_into(out, depth + 1);
        }
    }

    fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::Scan { .. } => Vec::new(),
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Compute { input, .. }
            | PlanNode::Distinct { input }
            | PlanNode::Sort { input, .. }
            | PlanNode::Group { input, .. } => vec![input],
            PlanNode::Join { left, right, .. }
            | PlanNode::Product { left, right }
            | PlanNode::Union { left, right }
            | PlanNode::Difference { left, right } => vec![left, right],
        }
    }

    fn describe(&self) -> String {
        match self {
            PlanNode::Scan { name, rows } => format!("Scan {name} [{rows} rows]"),
            PlanNode::Filter { predicates, .. } => {
                let parts: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
                format!("Filter {}", parts.join(" AND "))
            }
            PlanNode::Project { columns, .. } => format!("Project [{}]", columns.join(", ")),
            PlanNode::Compute { columns, .. } => format!("Compute [{}]", columns.join(", ")),
            PlanNode::Join {
                condition,
                est_rows,
                ..
            } => match condition {
                Some(c) => format!("Join {c} (~{est_rows} rows)"),
                None => format!("Join <pushed-down> (~{est_rows} rows)"),
            },
            PlanNode::Product { .. } => "Product".to_string(),
            PlanNode::Union { .. } => "Union".to_string(),
            PlanNode::Difference { .. } => "Difference".to_string(),
            PlanNode::Distinct { .. } => "Distinct".to_string(),
            PlanNode::Sort { keys, .. } => {
                let parts: Vec<String> = keys
                    .iter()
                    .map(|(k, desc)| format!("{k} {}", if *desc { "desc" } else { "asc" }))
                    .collect();
                format!("Sort [{}]", parts.join(", "))
            }
            PlanNode::Group { levels, .. } => {
                let parts: Vec<String> = levels
                    .iter()
                    .map(|l| format!("[{}]", l.join(", ")))
                    .collect();
                format!("Group {}", parts.join(" "))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Predicate cost ordering (shared by eval stages and the delta path)
// ---------------------------------------------------------------------

/// Whether evaluating `e` walks anything beyond column/literal
/// comparisons and boolean connectives.
fn has_expensive_node(e: &Expr) -> bool {
    match e {
        Expr::Col(_) | Expr::Lit(_) => false,
        Expr::Arith(..) | Expr::Neg(_) | Expr::Like(..) | Expr::If(..) => true,
        Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            has_expensive_node(a) || has_expensive_node(b)
        }
        Expr::Not(a) | Expr::IsNull(a) => has_expensive_node(a),
    }
}

/// Evaluation cost class: 0 = pure `column OP literal` conjunction
/// (columnar-testable), 1 = comparisons/connectives only, 2 = involves
/// arithmetic, LIKE, or CASE.
fn cost_class(e: &Expr) -> u8 {
    if e.as_column_cmp_conjunction().is_some() {
        0
    } else if has_expensive_node(e) {
        2
    } else {
        1
    }
}

/// Estimated fraction of rows kept, in permille (lower = more selective).
/// Equality atoms use the distinct estimate of their column when `stats`
/// can provide one; everything non-atomic defaults to the middle.
fn selectivity_permille(e: &Expr, stats: Option<&Relation>) -> i64 {
    match e.as_column_cmp_conjunction() {
        Some(atoms) => atoms
            .iter()
            .map(|(col, op, _)| match op {
                CmpOp::Eq => {
                    let d = stats
                        .and_then(|r| r.distinct_estimate(col).ok())
                        .unwrap_or(10)
                        .max(1) as i64;
                    (1000 / d).clamp(1, 1000)
                }
                CmpOp::Ne => 990,
                _ => 333,
            })
            .min()
            .unwrap_or(500),
        None => 500,
    }
}

/// Order predicate indices cheapest-and-most-selective first. The sort is
/// stable with the original index as the final tie-break, so the result
/// is deterministic. Sound wherever the predicates commute (same-rank
/// selections, conjuncts of one condition): reordering changes evaluation
/// cost, never the surviving multiset.
fn order_predicate_refs(preds: &[&Expr], stats: Option<&Relation>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..preds.len()).collect();
    order.sort_by_key(|&i| (cost_class(preds[i]), selectivity_permille(preds[i], stats)));
    order
}

/// Reorder a predicate list for a fused narrowing pass (the delta path's
/// entry point — `Spreadsheet::narrow` conjoins in this order, so the
/// cache and the full evaluator apply the identical rewrite).
pub(crate) fn reorder_predicates(preds: &[Expr], stats: Option<&Relation>) -> Vec<Expr> {
    let refs: Vec<&Expr> = preds.iter().collect();
    order_predicate_refs(&refs, stats)
        .into_iter()
        .map(|i| preds[i].clone())
        .collect()
}

// ---------------------------------------------------------------------
// The unary-pipeline plan
// ---------------------------------------------------------------------

/// One rank's worth of step-3 work: computed columns to materialize
/// (creation order), then one fused filter pass (cost order).
#[derive(Debug, Clone, Default)]
pub(crate) struct Stage {
    /// Indices into `state.computed` materialized at this rank (only
    /// those a selection transitively reads — the rest are deferred).
    pub(crate) compute: Vec<usize>,
    /// Indices into `state.selections` fused into this rank's pass.
    pub(crate) filters: Vec<usize>,
}

/// The lowered plan for one `(base, QueryState)` pair: reference
/// validation, rank assignment, and the Theorem-2 rewrites both engines
/// share. The naive engine consumes only the rank assignment (it *is*
/// the unrewritten oracle); the index-vector engine executes the staged,
/// fused form.
pub struct Plan {
    /// Rank of each computed column, parallel to `state.computed`.
    pub(crate) ranks: Vec<usize>,
    /// Rank of each selection, parallel to `state.selections`.
    pub(crate) sel_ranks: Vec<usize>,
    pub(crate) max_rank: usize,
    /// Selections hoisted above duplicate elimination (rank 0 with dedup
    /// on), in fused execution order.
    pub(crate) pre_dedup: Vec<usize>,
    /// Step-3 work per rank, index = rank.
    pub(crate) stages: Vec<Stage>,
    root: PlanNode,
}

impl Plan {
    /// Validate, assign ranks, and apply the rewrites.
    pub fn prepare(base: &Relation, state: &QueryState) -> Result<Plan> {
        let base_cols: BTreeSet<String> = base
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();

        // Validate references before touching data.
        for col in state.referenced_columns() {
            if !base_cols.contains(&col) && !state.is_computed(&col) {
                return Err(SheetError::UnknownColumn { name: col });
            }
        }
        let ranks = compute_ranks(&base_cols, &state.computed).ok_or_else(|| {
            SheetError::Relation(ssa_relation::RelationError::TypeMismatch {
                context: "cyclic computed-column definitions".into(),
            })
        })?;

        let sel_ranks: Vec<usize> = state
            .selections
            .iter()
            .map(|s| {
                s.predicate
                    .columns()
                    .iter()
                    .map(|c| {
                        column_rank(c, &base_cols, &state.computed, &ranks)
                            .ok_or_else(|| SheetError::UnknownColumn { name: c.clone() })
                    })
                    .try_fold(0usize, |acc, r| r.map(|r| acc.max(r)))
            })
            .collect::<Result<_>>()?;

        let max_rank = ranks
            .iter()
            .chain(sel_ranks.iter())
            .copied()
            .max()
            .unwrap_or(0);

        // Computed columns a selection transitively reads must exist while
        // step 3 filters; everything else defers to step 4 (automatic
        // update), where it is computed once over the final multiset.
        let comp_idx: HashMap<&str, usize> = state
            .computed
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.as_str(), i))
            .collect();
        let mut early = vec![false; state.computed.len()];
        let mut pending: Vec<usize> = state
            .selections
            .iter()
            .flat_map(|s| s.predicate.columns())
            .filter_map(|n| comp_idx.get(n.as_str()).copied())
            .collect();
        while let Some(i) = pending.pop() {
            if !early[i] {
                early[i] = true;
                pending.extend(
                    state.computed[i]
                        .def
                        .dependencies()
                        .iter()
                        .filter_map(|n| comp_idx.get(n.as_str()).copied()),
                );
            }
        }

        // Bucket selections by rank, then order each bucket cheap-first.
        // Rank-0 selections reference base columns only; with dedup on
        // they hoist above duplicate elimination (duplicate R-tuples
        // agree on every base column, so the surviving first occurrences
        // are identical either way).
        let mut by_rank: Vec<Vec<usize>> = vec![Vec::new(); max_rank + 1];
        for (si, &r) in sel_ranks.iter().enumerate() {
            by_rank[r].push(si);
        }
        let order_bucket = |bucket: &[usize]| -> Vec<usize> {
            let preds: Vec<&Expr> = bucket
                .iter()
                .map(|&si| &state.selections[si].predicate)
                .collect();
            order_predicate_refs(&preds, Some(base))
                .into_iter()
                .map(|p| bucket[p])
                .collect()
        };
        let pre_dedup = if state.dedup {
            order_bucket(&std::mem::take(&mut by_rank[0]))
        } else {
            Vec::new()
        };
        let mut stages: Vec<Stage> = (0..=max_rank).map(|_| Stage::default()).collect();
        for (i, &r) in ranks.iter().enumerate() {
            if early[i] {
                stages[r].compute.push(i);
            }
        }
        for (r, bucket) in by_rank.iter().enumerate() {
            stages[r].filters = order_bucket(bucket);
        }

        let root = Plan::build_root(base, state, &ranks, &early, &pre_dedup, &stages);
        Ok(Plan {
            ranks,
            sel_ranks,
            max_rank,
            pre_dedup,
            stages,
            root,
        })
    }

    fn build_root(
        base: &Relation,
        state: &QueryState,
        ranks: &[usize],
        early: &[bool],
        pre_dedup: &[usize],
        stages: &[Stage],
    ) -> PlanNode {
        let sel_exprs = |idxs: &[usize]| -> Vec<Expr> {
            idxs.iter()
                .map(|&si| state.selections[si].predicate.clone())
                .collect()
        };
        let mut node = PlanNode::Scan {
            name: base.name().to_string(),
            rows: base.len(),
        };
        if !pre_dedup.is_empty() {
            node = PlanNode::Filter {
                predicates: sel_exprs(pre_dedup),
                input: Box::new(node),
            };
        }
        if state.dedup {
            node = PlanNode::Distinct {
                input: Box::new(node),
            };
        }
        for stage in stages {
            if !stage.compute.is_empty() {
                node = PlanNode::Compute {
                    columns: stage
                        .compute
                        .iter()
                        .map(|&i| state.computed[i].name.clone())
                        .collect(),
                    input: Box::new(node),
                };
            }
            if !stage.filters.is_empty() {
                node = PlanNode::Filter {
                    predicates: sel_exprs(&stage.filters),
                    input: Box::new(node),
                };
            }
        }
        // Step 4: deferred columns, computed once over the final multiset
        // (rank order).
        let mut deferred: Vec<usize> = (0..state.computed.len()).filter(|&i| !early[i]).collect();
        deferred.sort_by_key(|&i| ranks[i]);
        if !deferred.is_empty() {
            node = PlanNode::Compute {
                columns: deferred
                    .iter()
                    .map(|&i| state.computed[i].name.clone())
                    .collect(),
                input: Box::new(node),
            };
        }
        if !state.projected_out.is_empty() {
            node = PlanNode::Project {
                columns: crate::eval::visible_columns(base, state),
                input: Box::new(node),
            };
        }
        let sort_cols = state.spec.sort_columns();
        if !sort_cols.is_empty() {
            node = PlanNode::Sort {
                keys: sort_cols,
                input: Box::new(node),
            };
        }
        if !state.spec.levels.is_empty() {
            node = PlanNode::Group {
                levels: state.spec.levels.iter().map(|l| l.basis.clone()).collect(),
                input: Box::new(node),
            };
        }
        node
    }

    /// Computed-column indices, stably sorted by rank — the order in
    /// which both engines materialize (and the canonical relation lays
    /// out) the computed columns.
    pub(crate) fn rank_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.ranks.len()).collect();
        order.sort_by_key(|&i| self.ranks[i]);
        order
    }

    /// The lowered operator DAG (root node).
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// `EXPLAIN`-style text rendering of the plan.
    pub fn render(&self) -> String {
        self.root.render()
    }
}

// ---------------------------------------------------------------------
// Join-condition pushdown (sheet binary operators)
// ---------------------------------------------------------------------

/// Split a join condition over the combined schema into operand-local
/// conjuncts and the remaining cross-operand condition. A conjunct whose
/// columns all live in one operand filters that operand *before* the
/// join: the conjunction is TRUE exactly when every conjunct is TRUE
/// (three-valued AND), and the join emits left-major over subsequences of
/// each operand, so pre-filtering preserves both the surviving multiset
/// and the output order. Conjuncts spanning both sides — and anything
/// unresolvable — stay in the join condition.
///
/// Returned right-side predicates are rewritten into the right operand's
/// own column names (combined-schema names un-prefix back).
pub(crate) fn split_join_condition(
    combined: &Schema,
    left_width: usize,
    right: &Schema,
    condition: &Expr,
) -> (Vec<Expr>, Vec<Expr>, Option<Expr>) {
    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut rest = Vec::new();
    for conjunct in condition.split_conjuncts() {
        let cols = conjunct.columns();
        let idxs: Option<Vec<usize>> = cols.iter().map(|c| combined.index_of(c).ok()).collect();
        match idxs {
            Some(idxs) if !idxs.is_empty() && idxs.iter().all(|&i| i < left_width) => {
                left_preds.push(conjunct.clone());
            }
            Some(idxs) if !idxs.is_empty() && idxs.iter().all(|&i| i >= left_width) => {
                // Un-prefix combined names back into the right operand's
                // own schema.
                let local = conjunct.map_columns(&|n| match combined.index_of(n) {
                    Ok(i) if i >= left_width => right.columns()[i - left_width].name.clone(),
                    _ => n.to_string(),
                });
                right_preds.push(local);
            }
            _ => rest.push(conjunct.clone()),
        }
    }
    (left_preds, right_preds, Expr::conjoin(rest))
}

/// Join two relations with single-side conjuncts pushed below the join,
/// cheap-first. Row-for-row identical (rows *and* order) to
/// `ops::join_opts(left, right, condition, …)`; when every conjunct
/// pushes down, the join degenerates to a product of the filtered
/// operands (same left-major order).
pub fn join_with_pushdown(
    left: &Relation,
    right: &Relation,
    condition: &Expr,
    parallel_threshold: usize,
) -> ssa_relation::Result<Relation> {
    let combined = left.schema().product(right.schema(), right.name());
    let (lp, rp, rest) =
        split_join_condition(&combined, left.schema().len(), right.schema(), condition);
    let apply = |rel: &Relation, preds: &[Expr]| -> ssa_relation::Result<Relation> {
        match Expr::conjoin(reorder_predicates(preds, Some(rel))) {
            Some(p) => ops::select(rel, &p),
            None => Ok(rel.clone()),
        }
    };
    let lf = apply(left, &lp)?;
    let rf = apply(right, &rp)?;
    match rest {
        Some(c) => ops::join_opts(&lf, &rf, &c, parallel_threshold),
        None => {
            let mut r = ops::product_opts(&lf, &rf, parallel_threshold)?;
            r.set_name(format!("{}_join_{}", left.name(), right.name()));
            Ok(r)
        }
    }
}

// ---------------------------------------------------------------------
// Multi-join table planning (FROM lists, TPC-H workloads)
// ---------------------------------------------------------------------

/// One join step: bring `input` into the running join tree, applying its
/// pushed-down filters first and `condition` at the join.
#[derive(Debug, Clone)]
struct JoinStep {
    input: usize,
    filters: Vec<Expr>,
    condition: Option<Expr>,
}

/// How the planned join tree restores the unplanned (left-deep,
/// FROM-order nested loop) row order. Cheapest applicable wins.
enum Strategy {
    /// The greedy join order came out equal to the FROM order: the hash
    /// join chain already emits nested-loop order. No provenance, no
    /// sort, no final projection.
    Chain { steps: Vec<JoinStep> },
    /// The cheapest start is not the FROM head, but `inputs[1..]` connect
    /// among themselves: chain them first, restore their FROM order, then
    /// join with `inputs[0]` as the LEFT operand — left-major join output
    /// restores nested-loop order without ever materializing a
    /// provenance column on the (typically largest) FROM head.
    Flip {
        head: JoinStep,
        rest: Vec<JoinStep>,
        /// Conjuncts connecting the head to the rest chain.
        condition: Option<Expr>,
    },
    /// General fallback (e.g. a star schema forced to start off-head):
    /// provenance column on every input, one final sort.
    Prov { steps: Vec<JoinStep> },
}

/// A planned multi-relation query block: selection pushdown below the
/// joins, greedy selectivity-ordered join tree, output order restored to
/// the unplanned nested-loop order. Built by [`plan_tables`]; borrows
/// its inputs, cloning rows only where filtering or renaming forces it.
pub struct TablePlan<'a> {
    root: PlanNode,
    inputs: Vec<&'a Relation>,
    /// Input schema in the combined (FROM-order product) name space,
    /// `Some` only when the fold actually renamed a clashing column.
    renamed: Vec<Option<Schema>>,
    /// Provenance column name per input (unique against the combined
    /// schema), materialized only where the strategy needs it.
    prov_names: Vec<String>,
    /// Combined-schema column names in FROM-order — the output schema.
    output_names: Vec<String>,
    strategy: Strategy,
    /// Conjuncts applied after the last join (no columns, or columns the
    /// combined schema does not know — the latter error exactly like the
    /// unplanned pipeline's WHERE).
    top: Vec<Expr>,
}

/// Plan `σ_condition(inputs[0] × inputs[1] × …)` — the FROM/WHERE core of
/// a query block. The returned plan executes the same multiset through
/// pushed-down filters and a selectivity-ordered hash-join tree, and
/// restores the exact left-deep nested-loop row order (prov-free when the
/// join order already yields it), so [`TablePlan::execute`] is
/// bitwise-identical to the unplanned pipeline.
pub fn plan_tables<'a>(
    inputs: &[&'a Relation],
    condition: Option<&Expr>,
) -> ssa_relation::Result<TablePlan<'a>> {
    assert!(!inputs.is_empty(), "plan_tables needs at least one input");

    // Final (combined) names: fold the FROM-order product over schemas.
    // Later products never rename earlier columns, so each input's slice
    // of the final combined schema is fixed once it is folded in.
    let mut combined = inputs[0].schema().clone();
    let mut offsets = vec![0usize];
    for r in &inputs[1..] {
        offsets.push(combined.len());
        combined = combined.product(r.schema(), r.name());
    }
    let output_names: Vec<String> = combined.names().iter().map(|s| s.to_string()).collect();

    // Each input's schema in the combined name space — `Some` only where
    // the fold renamed a clashing column, so unrenamed inputs execute
    // zero-copy off the borrow. Provenance names are reserved up front
    // but materialized only where the chosen strategy needs them.
    let mut renamed: Vec<Option<Schema>> = Vec::with_capacity(inputs.len());
    let mut prov_names: Vec<String> = Vec::with_capacity(inputs.len());
    for (j, r) in inputs.iter().enumerate() {
        let slice = &combined.columns()[offsets[j]..offsets[j] + r.schema().len()];
        let changed = slice
            .iter()
            .zip(r.schema().columns())
            .any(|(c, o)| c.name != o.name);
        renamed.push(if changed {
            Some(Schema::new(slice.to_vec())?)
        } else {
            None
        });
        let mut prov = format!("__prov{j}");
        while combined.contains(&prov) {
            prov.push('_');
        }
        prov_names.push(prov);
    }

    // Statistics live on the *borrowed* inputs, whose columns may carry
    // pre-rename names; translate combined names back before asking.
    let orig_col = |j: usize, name: &str| -> String {
        match combined.index_of(name) {
            Ok(i) if i >= offsets[j] && i < offsets[j] + inputs[j].schema().len() => {
                inputs[j].schema().columns()[i - offsets[j]].name.clone()
            }
            _ => name.to_string(),
        }
    };
    let orig_expr = |j: usize, e: &Expr| -> Expr {
        match &renamed[j] {
            None => e.clone(),
            Some(_) => e.map_columns(&|n| orig_col(j, n)),
        }
    };

    // Classify WHERE conjuncts by the set of inputs they touch.
    let owner: HashMap<&str, usize> = (0..inputs.len())
        .flat_map(|j| {
            let w = inputs[j].schema().len();
            combined.columns()[offsets[j]..offsets[j] + w]
                .iter()
                .map(move |c| (c.name.as_str(), j))
        })
        .collect();
    let mut filters: Vec<Vec<Expr>> = vec![Vec::new(); inputs.len()];
    let mut top: Vec<Expr> = Vec::new();
    // (conjunct, touched inputs) — multi-table conjuncts await a join.
    let mut join_conjs: Vec<(Expr, BTreeSet<usize>)> = Vec::new();
    if let Some(cond) = condition {
        for conjunct in cond.split_conjuncts() {
            let cols = conjunct.columns();
            let tables: Option<BTreeSet<usize>> = cols
                .iter()
                .map(|c| owner.get(c.as_str()).copied())
                .collect();
            match tables {
                Some(t) if t.len() == 1 => {
                    let j = *t.iter().next().unwrap_or(&0);
                    filters[j].push(conjunct.clone());
                }
                Some(t) if t.len() > 1 => join_conjs.push((conjunct.clone(), t)),
                // Zero columns, or a column the combined schema lacks:
                // evaluate at the top, exactly like the unplanned WHERE.
                _ => top.push(conjunct.clone()),
            }
        }
    }

    // Estimated post-filter cardinality per input.
    let est: Vec<f64> = (0..inputs.len())
        .map(|j| {
            let mut e = inputs[j].row_count() as f64;
            for p in &filters[j] {
                e *= selectivity_permille(&orig_expr(j, p), Some(inputs[j])) as f64 / 1000.0;
            }
            e.max(1.0)
        })
        .collect();

    // Estimated distinct count for an equi-join column on its input.
    let col_distinct = |j: usize, col: &str| -> f64 {
        inputs[j]
            .distinct_estimate(&orig_col(j, col))
            .unwrap_or(1)
            .max(1) as f64
    };
    // Selectivity of one join conjunct between the placed set and `j`:
    // equi column pairs use 1/max(d_a, d_b); anything else a flat third.
    let conj_selectivity = |conj: &Expr, j: usize| -> f64 {
        if let Expr::Cmp(a, CmpOp::Eq, b) = conj {
            if let (Expr::Col(x), Expr::Col(y)) = (a.as_ref(), b.as_ref()) {
                let (dx, dy) = match (owner.get(x.as_str()), owner.get(y.as_str())) {
                    (Some(&jx), Some(&jy)) if jx == j || jy == j => {
                        (col_distinct(jx, x), col_distinct(jy, y))
                    }
                    _ => return 1.0 / 3.0,
                };
                return 1.0 / dx.max(dy);
            }
        }
        1.0 / 3.0
    };

    // Greedy chain over `members`: start from the smallest estimated
    // input, then repeatedly bring in the connected member minimizing the
    // estimated output cardinality (cross products only when nothing
    // connects). Only conjuncts fully inside `members` are attached; each
    // fires at the step where the last input it touches is placed.
    let greedy = |members: &[usize]| -> Vec<JoinStep> {
        let mut start = members[0];
        for &j in &members[1..] {
            if est[j] < est[start] {
                start = j;
            }
        }
        let mut placed = vec![false; inputs.len()];
        placed[start] = true;
        let mut used = vec![false; join_conjs.len()];
        let mut cur_est = est[start];
        let mut steps = vec![JoinStep {
            input: start,
            filters: Vec::new(),
            condition: None,
        }];
        while steps.len() < members.len() {
            let mut best: Option<(bool, f64, usize, Vec<usize>)> = None;
            for &j in members {
                if placed[j] {
                    continue;
                }
                let edges: Vec<usize> = join_conjs
                    .iter()
                    .enumerate()
                    .filter(|(ci, (_, tables))| {
                        !used[*ci]
                            && tables.contains(&j)
                            && tables.iter().all(|&t| t == j || placed[t])
                    })
                    .map(|(ci, _)| ci)
                    .collect();
                let connected = !edges.is_empty();
                let mut out = cur_est * est[j];
                for &ci in &edges {
                    out *= conj_selectivity(&join_conjs[ci].0, j);
                }
                let out = out.max(1.0);
                let better = match &best {
                    None => true,
                    // Connected candidates always beat disconnected (avoid
                    // cross products); then lowest estimated output; then
                    // FROM order for determinism.
                    Some((bc, bo, bj, _)) => {
                        if connected != *bc {
                            connected
                        } else {
                            match out.total_cmp(bo) {
                                std::cmp::Ordering::Less => true,
                                std::cmp::Ordering::Equal => j < *bj,
                                std::cmp::Ordering::Greater => false,
                            }
                        }
                    }
                };
                if better {
                    best = Some((connected, out, j, edges));
                }
            }
            let Some((_, out, j, edges)) = best else {
                break;
            };
            placed[j] = true;
            cur_est = out;
            let cond = Expr::conjoin(edges.iter().map(|&ci| join_conjs[ci].0.clone()).collect());
            for ci in edges {
                used[ci] = true;
            }
            steps.push(JoinStep {
                input: j,
                filters: Vec::new(),
                condition: cond,
            });
        }
        steps
    };
    // Order each step's pushed filters cheap-first (statistics off the
    // borrowed input, names translated back) and attach them.
    let attach = |steps: &mut [JoinStep]| {
        for step in steps.iter_mut() {
            let j = step.input;
            let local: Vec<Expr> = filters[j].iter().map(|p| orig_expr(j, p)).collect();
            let refs: Vec<&Expr> = local.iter().collect();
            let order = order_predicate_refs(&refs, Some(inputs[j]));
            step.filters = order.iter().map(|&i| filters[j][i].clone()).collect();
        }
    };

    let n = inputs.len();
    let all: Vec<usize> = (0..n).collect();
    let mut steps = greedy(&all);
    attach(&mut steps);

    // Pick the cheapest order-restoration strategy (see [`Strategy`]).
    let from_order = steps.iter().enumerate().all(|(i, s)| s.input == i);
    let strategy = if from_order {
        Strategy::Chain { steps }
    } else {
        let rest_members: Vec<usize> = (1..n).collect();
        let mut rest = greedy(&rest_members);
        // The flip is worthwhile only when inputs[1..] connect among
        // themselves — a cross product inside the rest chain would blow
        // up what the full greedy order avoided.
        if rest[1..].iter().all(|s| s.condition.is_some()) {
            attach(&mut rest);
            let mut head = JoinStep {
                input: 0,
                filters: Vec::new(),
                condition: None,
            };
            attach(std::slice::from_mut(&mut head));
            let cond = Expr::conjoin(
                join_conjs
                    .iter()
                    .filter(|(_, t)| t.contains(&0))
                    .map(|(c, _)| c.clone())
                    .collect(),
            );
            Strategy::Flip {
                head,
                rest,
                condition: cond,
            }
        } else {
            Strategy::Prov { steps }
        }
    };

    // Mirror the strategy as a PlanNode tree for EXPLAIN.
    let leaf = |step: &JoinStep| -> PlanNode {
        let scan = PlanNode::Scan {
            name: inputs[step.input].name().to_string(),
            rows: inputs[step.input].row_count(),
        };
        if step.filters.is_empty() {
            scan
        } else {
            PlanNode::Filter {
                predicates: step.filters.clone(),
                input: Box::new(scan),
            }
        }
    };
    let fold_nodes = |steps: &[JoinStep]| -> (PlanNode, f64) {
        let mut root = leaf(&steps[0]);
        let mut run_est = est[steps[0].input];
        for step in &steps[1..] {
            run_est *= est[step.input];
            if let Some(c) = &step.condition {
                for conj in c.split_conjuncts() {
                    run_est *= conj_selectivity(conj, step.input);
                }
                run_est = run_est.max(1.0);
                root = PlanNode::Join {
                    condition: Some(c.clone()),
                    est_rows: run_est as usize,
                    left: Box::new(root),
                    right: Box::new(leaf(step)),
                };
            } else {
                root = PlanNode::Product {
                    left: Box::new(root),
                    right: Box::new(leaf(step)),
                };
            }
        }
        (root, run_est)
    };
    let mut root = match &strategy {
        Strategy::Chain { steps } | Strategy::Prov { steps } => fold_nodes(steps).0,
        Strategy::Flip {
            head,
            rest,
            condition,
        } => {
            let (right, rest_est) = fold_nodes(rest);
            match condition {
                Some(c) => {
                    let mut run_est = rest_est * est[0];
                    for conj in c.split_conjuncts() {
                        run_est *= conj_selectivity(conj, 0);
                    }
                    PlanNode::Join {
                        condition: Some(c.clone()),
                        est_rows: run_est.max(1.0) as usize,
                        left: Box::new(leaf(head)),
                        right: Box::new(right),
                    }
                }
                None => PlanNode::Product {
                    left: Box::new(leaf(head)),
                    right: Box::new(right),
                },
            }
        }
    };
    if !top.is_empty() {
        root = PlanNode::Filter {
            predicates: top.clone(),
            input: Box::new(root),
        };
    }

    Ok(TablePlan {
        root,
        inputs: inputs.to_vec(),
        renamed,
        prov_names,
        output_names,
        strategy,
        top,
    })
}

impl<'a> TablePlan<'a> {
    /// The lowered join tree (root node).
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// `EXPLAIN`-style text rendering.
    pub fn render(&self) -> String {
        self.root.render()
    }

    /// Input `j` in the combined name space — borrowed (zero-copy) when
    /// the FROM-order fold left its column names unchanged.
    fn source(&self, j: usize) -> ssa_relation::Result<Cow<'a, Relation>> {
        Ok(match &self.renamed[j] {
            Some(s) => Cow::Owned(Relation::with_rows(
                self.inputs[j].name(),
                s.clone(),
                self.inputs[j].rows().to_vec(),
            )?),
            None => Cow::Borrowed(self.inputs[j]),
        })
    }

    /// [`Self::source`] with the step's pushed-down filters applied.
    fn prepped(&self, step: &JoinStep) -> ssa_relation::Result<Cow<'a, Relation>> {
        let src = self.source(step.input)?;
        match Expr::conjoin(step.filters.clone()) {
            Some(p) => Ok(Cow::Owned(ops::select(&src, &p)?)),
            None => Ok(src),
        }
    }

    /// [`Self::prepped`] plus a provenance column numbering the surviving
    /// rows. Post-filter indices are dense but order-isomorphic to the
    /// original row positions (selection keeps a subsequence), so sorting
    /// by them is sorting by original position.
    fn prov_prepped(&self, step: &JoinStep) -> ssa_relation::Result<Relation> {
        let mut rel = self.prepped(step)?.into_owned();
        rel.add_column(
            Column::new(self.prov_names[step.input].clone(), ValueType::Int),
            |i, _| Value::Int(i as i64),
        )?;
        Ok(rel)
    }

    /// Left-deep fold of a step chain (first step's condition is `None`).
    fn fold_chain(
        &self,
        steps: &[JoinStep],
        parallel_threshold: usize,
    ) -> ssa_relation::Result<Cow<'a, Relation>> {
        let mut cur = self.prepped(&steps[0])?;
        for step in &steps[1..] {
            let rhs = self.prepped(step)?;
            cur = Cow::Owned(match &step.condition {
                Some(c) => ops::join_opts(&cur, &rhs, c, parallel_threshold)?,
                None => ops::product_opts(&cur, &rhs, parallel_threshold)?,
            });
        }
        Ok(cur)
    }

    /// Execute the plan. The result carries the combined (FROM-order
    /// product) schema and the exact row order of the unplanned
    /// `σ(scan₀ × scan₁ × …)` pipeline. A FROM-order hash-join chain
    /// already emits that order for free; otherwise provenance columns
    /// are materialized on exactly the out-of-order inputs, sorted back,
    /// and projected away.
    pub fn execute(&self, parallel_threshold: usize) -> ssa_relation::Result<Relation> {
        let sort_by_provs =
            |cur: &mut Relation, mut provs: Vec<usize>| -> ssa_relation::Result<()> {
                provs.sort_unstable();
                let prov_idx: Vec<usize> = provs
                    .iter()
                    .map(|&j| cur.schema().index_of(&self.prov_names[j]))
                    .collect::<ssa_relation::Result<_>>()?;
                cur.rows_mut().sort_by(|a, b| {
                    prov_idx
                        .iter()
                        .map(|&i| a.get(i))
                        .cmp(prov_idx.iter().map(|&i| b.get(i)))
                });
                Ok(())
            };
        let mut cur: Relation = match &self.strategy {
            // Greedy order == FROM order: the chain is already in
            // nested-loop order, untouched borrows flow straight through.
            Strategy::Chain { steps } => self.fold_chain(steps, parallel_threshold)?.into_owned(),
            Strategy::Flip {
                head,
                rest,
                condition,
            } => {
                // When the rest chain itself runs in FROM order its output
                // is already nested-loop ordered — skip provenance there
                // too. Otherwise number only the rest inputs and sort the
                // (small, post-join) chain back into their FROM order.
                let ordered = rest.windows(2).all(|w| w[0].input < w[1].input);
                let right: Relation = if ordered {
                    self.fold_chain(rest, parallel_threshold)?.into_owned()
                } else {
                    let mut cur = self.prov_prepped(&rest[0])?;
                    for step in &rest[1..] {
                        let rhs = self.prov_prepped(step)?;
                        cur = match &step.condition {
                            Some(c) => ops::join_opts(&cur, &rhs, c, parallel_threshold)?,
                            None => ops::product_opts(&cur, &rhs, parallel_threshold)?,
                        };
                    }
                    sort_by_provs(&mut cur, rest.iter().map(|s| s.input).collect())?;
                    cur
                };
                // Final join with the untouched FROM head as the LEFT
                // operand: hash-join output is left-major with right
                // matches in right-row order, which is exactly the
                // nested-loop order over (head, rest-in-FROM-order).
                let left = self.prepped(head)?;
                match condition {
                    Some(c) => ops::join_opts(&left, &right, c, parallel_threshold)?,
                    None => ops::product_opts(&left, &right, parallel_threshold)?,
                }
            }
            Strategy::Prov { steps } => {
                let mut cur = self.prov_prepped(&steps[0])?;
                for step in &steps[1..] {
                    let rhs = self.prov_prepped(step)?;
                    cur = match &step.condition {
                        Some(c) => ops::join_opts(&cur, &rhs, c, parallel_threshold)?,
                        None => ops::product_opts(&cur, &rhs, parallel_threshold)?,
                    };
                }
                cur
            }
        };
        if let Some(p) = Expr::conjoin(self.top.clone()) {
            cur = ops::select(&cur, &p)?;
        }
        if let Strategy::Prov { steps } = &self.strategy {
            sort_by_provs(&mut cur, steps.iter().map(|s| s.input).collect())?;
        }
        // Project away provenance / restore combined column order — a
        // no-op (skipped) when the chain already emitted the combined
        // schema verbatim.
        let names: Vec<&str> = self.output_names.iter().map(String::as_str).collect();
        if cur.schema().names() == names {
            Ok(cur)
        } else {
            ops::project(&cur, &names)
        }
    }
}
