//! Cascaded query modification (Sec. V-B).
//!
//! "We can remove an aggregate column, provided that no operator depends
//! on it. If a column that serves dependencies needs to be removed, all
//! dependent columns must be removed first." The one-shot operators on
//! [`Spreadsheet`] refuse with [`SheetError::ColumnInUse`]; this module
//! computes the *plan* — everything that depends on a column,
//! transitively, in a removal order — and can execute it, which is what
//! an interface offers as "remove X and everything that uses it".

use crate::error::{Result, SheetError};
use crate::sheet::Spreadsheet;
use std::collections::BTreeSet;
use std::fmt;

/// Everything that must go, in execution order, to remove one computed
/// column.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RemovalPlan {
    /// Selection ids to remove (they reference doomed columns).
    pub selections: Vec<u64>,
    /// Finest-level ordering keys to drop (attribute names).
    pub order_keys: Vec<String>,
    /// Computed columns to remove, dependents before dependencies — the
    /// target column is last.
    pub computed: Vec<String>,
}

impl RemovalPlan {
    pub fn is_single(&self) -> bool {
        self.selections.is_empty() && self.order_keys.is_empty() && self.computed.len() == 1
    }

    /// Total number of individual removals.
    pub fn len(&self) -> usize {
        self.selections.len() + self.order_keys.len() + self.computed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for RemovalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for id in &self.selections {
            parts.push(format!("selection #{id}"));
        }
        for k in &self.order_keys {
            parts.push(format!("ordering by {k}"));
        }
        for c in &self.computed {
            parts.push(format!("column {c}"));
        }
        write!(f, "remove {}", parts.join(", then "))
    }
}

impl Spreadsheet {
    /// Compute the cascade required to remove computed column `column`.
    ///
    /// Fails with [`SheetError::ColumnInUse`] if the column (or one of
    /// its transitive dependents) appears in a grouping basis — grouping
    /// changes are a separate, heavier interaction (the interface asks
    /// the user to regroup explicitly).
    pub fn removal_plan(&self, column: &str) -> Result<RemovalPlan> {
        if !self.state().is_computed(column) {
            return Err(SheetError::UnknownColumn {
                name: column.to_string(),
            });
        }
        // Transitive closure of computed columns that (directly or not)
        // read any doomed column.
        let mut doomed: BTreeSet<String> = BTreeSet::new();
        doomed.insert(column.to_string());
        loop {
            let mut grew = false;
            for c in &self.state().computed {
                if doomed.contains(&c.name) {
                    continue;
                }
                if c.def.dependencies().intersection(&doomed).next().is_some() {
                    doomed.insert(c.name.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        // Grouping over a doomed column cannot be cascaded away here.
        let grouped = self.state().spec.all_grouping_attributes();
        if let Some(g) = grouped.intersection(&doomed).next() {
            return Err(SheetError::ColumnInUse {
                name: g.clone(),
                dependents: vec!["grouping".to_string()],
            });
        }

        let selections = self
            .state()
            .selections
            .iter()
            .filter(|s| s.predicate.columns().intersection(&doomed).next().is_some())
            .map(|s| s.id)
            .collect();
        let order_keys = self
            .state()
            .spec
            .finest_order
            .iter()
            .filter(|k| doomed.contains(&k.attribute))
            .map(|k| k.attribute.clone())
            .collect();

        // Order computed removals dependents-first: repeatedly take a
        // doomed column that no other doomed column depends on.
        let mut remaining: Vec<String> = self
            .state()
            .computed
            .iter()
            .filter(|c| doomed.contains(&c.name))
            .map(|c| c.name.clone())
            .collect();
        let mut computed = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let idx = remaining
                .iter()
                .position(|candidate| {
                    !remaining.iter().any(|other| {
                        other != candidate
                            && self
                                .state()
                                .computed_column(other)
                                .map(|c| c.def.dependencies().contains(candidate))
                                .unwrap_or(false)
                    })
                })
                .expect("acyclic definitions always have a leaf");
            computed.push(remaining.remove(idx));
        }
        // Keep the target last for a readable plan (it is a dependency of
        // everything else doomed, so the loop already places it last).
        Ok(RemovalPlan {
            selections,
            order_keys,
            computed,
        })
    }

    /// Execute a removal plan: drop the dependent selections and ordering
    /// keys, then the computed columns, dependents first. Atomic as a
    /// whole: a failure at any step rolls the sheet back to before the
    /// first removal, not just before the failing one.
    pub fn remove_with_cascade(&mut self, column: &str) -> Result<RemovalPlan> {
        let plan = self.removal_plan(column)?;
        self.transact(|s| {
            for id in &plan.selections {
                s.remove_selection(*id)?;
            }
            for key in &plan.order_keys {
                s.remove_order_key(key)?;
            }
            for c in &plan.computed {
                s.remove_computed(c)?;
            }
            Ok(plan)
        })
    }

    /// Drop one finest-level ordering key (part of "those that depend on
    /// the ordering should be removed first", Sec. V-B).
    pub fn remove_order_key(&mut self, attribute: &str) -> Result<()> {
        self.transact(|s| {
            let spec = &mut s.state_mut_for_modify().spec;
            let before = spec.finest_order.len();
            spec.finest_order.retain(|k| k.attribute != attribute);
            if spec.finest_order.len() == before {
                return Err(SheetError::UnknownColumn {
                    name: attribute.to_string(),
                });
            }
            s.invalidate();
            Ok(())
        })
    }

    /// The state objects that still depend on the grouping below `level`
    /// (used by interfaces before offering a grouping change). Formulas
    /// depend on grouping only through the aggregates they read, so the
    /// aggregates are the complete answer.
    pub fn grouping_dependents(&self, level: usize) -> Vec<String> {
        self.state().aggregates_below_level(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::used_cars;
    use crate::spec::Direction;
    use ssa_relation::{AggFunc, Expr};

    fn rich_sheet() -> (Spreadsheet, u64) {
        // Avg_Price ← Delta (formula over it) ← selection on Delta,
        // plus an ordering key on Avg_Price.
        let mut s = Spreadsheet::over(used_cars());
        s.group(&["Model"], Direction::Asc).unwrap();
        let avg = s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
        s.formula(Some("Delta"), Expr::col("Price").sub(Expr::col(&avg)))
            .unwrap();
        let sel = s.select(Expr::col("Delta").lt(Expr::lit(0))).unwrap();
        s.order(&avg, Direction::Desc, 2).unwrap();
        (s, sel)
    }

    #[test]
    fn plan_collects_transitive_dependents_in_order() {
        let (s, sel) = rich_sheet();
        let plan = s.removal_plan("Avg_Price").unwrap();
        assert_eq!(plan.selections, vec![sel]);
        assert_eq!(plan.order_keys, vec!["Avg_Price".to_string()]);
        // Delta (dependent) before Avg_Price (dependency)
        assert_eq!(plan.computed, vec!["Delta".to_string(), "Avg_Price".into()]);
        assert!(!plan.is_single());
        assert_eq!(plan.len(), 4);
        let text = plan.to_string();
        assert!(text.contains("selection"));
        assert!(text.contains("then"));
    }

    #[test]
    fn execute_cascade_leaves_consistent_sheet() {
        let (mut s, _) = rich_sheet();
        let before_rows = 9;
        let plan = s.remove_with_cascade("Avg_Price").unwrap();
        assert_eq!(plan.len(), 4);
        let view = s.view().unwrap();
        assert_eq!(view.len(), before_rows);
        assert!(!view.data.schema().contains("Avg_Price"));
        assert!(!view.data.schema().contains("Delta"));
        assert!(s.state().selections.is_empty());
        assert!(s.state().spec.finest_order.is_empty());
        // grouping untouched
        assert_eq!(s.state().spec.level_count(), 2);
    }

    #[test]
    fn plan_for_leaf_column_is_single() {
        let mut s = Spreadsheet::over(used_cars());
        s.aggregate(AggFunc::Max, "Price", 1).unwrap();
        let plan = s.removal_plan("Max_Price").unwrap();
        assert!(plan.is_single());
        assert!(!plan.is_empty());
        s.remove_with_cascade("Max_Price").unwrap();
        assert!(s.state().computed.is_empty());
    }

    #[test]
    fn plan_rejects_grouping_dependency() {
        let mut s = Spreadsheet::over(used_cars());
        let f = s
            .formula(Some("PriceBand"), Expr::col("Price").div(Expr::lit(1000)))
            .unwrap();
        s.group(&[&f], Direction::Asc).unwrap();
        assert!(matches!(
            s.removal_plan(&f),
            Err(SheetError::ColumnInUse { .. })
        ));
    }

    #[test]
    fn plan_unknown_or_base_column_errors() {
        let s = Spreadsheet::over(used_cars());
        assert!(s.removal_plan("Ghost").is_err());
        // base columns are hidden via projection, not removed
        assert!(s.removal_plan("Price").is_err());
    }

    #[test]
    fn remove_order_key_directly() {
        let mut s = Spreadsheet::over(used_cars());
        s.order("Price", Direction::Asc, 1).unwrap();
        s.remove_order_key("Price").unwrap();
        assert!(s.state().spec.finest_order.is_empty());
        assert!(s.remove_order_key("Price").is_err());
    }

    #[test]
    fn cascade_matches_replaying_without_the_ops() {
        // Theorem-3 flavour: cascading removal == never having done them.
        let (mut a, _) = rich_sheet();
        a.remove_with_cascade("Avg_Price").unwrap();

        let mut b = Spreadsheet::over(used_cars());
        b.group(&["Model"], Direction::Asc).unwrap();
        assert_eq!(a.evaluate_now().unwrap(), b.evaluate_now().unwrap());
    }
}
