//! Modifiable query state (Sec. V-A).
//!
//! "Notice that we did not store the query state as an ordered list of
//! manipulations, but rather as individual operators associated with
//! objects they affected." Selections are attached to the columns their
//! predicates reference; projections are a set of removed columns;
//! aggregates and formulas live with their computed columns; grouping and
//! ordering are the retained [`Spec`]. Because the unary operators commute
//! (Theorem 2), this unordered state determines the spreadsheet content —
//! and editing it is equivalent to rewriting history (Theorem 3).

use crate::computed::{ComputedColumn, ComputedDef};
use crate::spec::Spec;
use ssa_relation::Expr;
use std::collections::BTreeSet;
use std::fmt;

/// A retained selection predicate with a stable identity, so the interface
/// can offer "replace or delete the predicate you applied earlier"
/// (Sec. V-B).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionEntry {
    pub id: u64,
    pub predicate: Expr,
}

impl fmt::Display for SelectionEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}: {}", self.id, self.predicate)
    }
}

/// The full query state of one spreadsheet since the last point of
/// non-commutativity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryState {
    /// Retained selection predicates (conjunctive: a tuple must satisfy
    /// all of them).
    pub selections: Vec<SelectionEntry>,
    /// Computed columns (aggregation and FC), in creation order — creation
    /// order is also display order for the extra columns.
    pub computed: Vec<ComputedColumn>,
    /// Columns currently projected out (hidden). Projection never removes
    /// data from `R` (Def. 6 changes only `C`), so these can be reinstated.
    pub projected_out: BTreeSet<String>,
    /// Whether duplicate elimination is in force. DE removes duplicate
    /// `R`-tuples; computed columns are functions of `R`-tuples and so
    /// never distinguish duplicates.
    pub dedup: bool,
    /// Grouping and ordering (`G`, `O`).
    pub spec: Spec,
    next_selection_id: u64,
}

impl QueryState {
    pub fn new() -> QueryState {
        QueryState::default()
    }

    /// The next selection id to hand out — persisted so a re-opened sheet
    /// never reuses an id that a prior session already assigned.
    pub(crate) fn next_selection_id_raw(&self) -> u64 {
        self.next_selection_id
    }

    pub(crate) fn set_next_selection_id_raw(&mut self, id: u64) {
        self.next_selection_id = id;
    }

    /// Record a new selection, returning its id.
    pub fn add_selection(&mut self, predicate: Expr) -> u64 {
        let id = self.next_selection_id;
        self.next_selection_id += 1;
        self.selections.push(SelectionEntry { id, predicate });
        id
    }

    /// Record a selection under a caller-chosen id. Replicated sheets
    /// derive selection ids from the creating event's identity, so the id
    /// must survive as given; the entry is inserted in id order (not
    /// appended) so that replicas converging on the same event set hold
    /// bitwise-identical state regardless of merge order, and the local
    /// counter jumps past `id` so later local selections never collide.
    pub fn add_selection_with_id(&mut self, id: u64, predicate: Expr) -> u64 {
        let pos = self.selections.partition_point(|s| s.id < id);
        self.selections
            .insert(pos, SelectionEntry { id, predicate });
        self.next_selection_id = self.next_selection_id.max(id + 1);
        id
    }

    pub fn selection(&self, id: u64) -> Option<&SelectionEntry> {
        self.selections.iter().find(|s| s.id == id)
    }

    pub fn remove_selection(&mut self, id: u64) -> Option<SelectionEntry> {
        let idx = self.selections.iter().position(|s| s.id == id)?;
        Some(self.selections.remove(idx))
    }

    pub fn replace_selection(&mut self, id: u64, predicate: Expr) -> bool {
        match self.selections.iter_mut().find(|s| s.id == id) {
            Some(entry) => {
                entry.predicate = predicate;
                true
            }
            None => false,
        }
    }

    /// Selection predicates that reference `column` — what the interface
    /// shows when the user begins to specify a selection on that column
    /// (Sec. V-B: "the user is given a list of selection predicates
    /// currently applied to that column").
    pub fn selections_on(&self, column: &str) -> Vec<&SelectionEntry> {
        self.selections
            .iter()
            .filter(|s| s.predicate.columns().contains(column))
            .collect()
    }

    pub fn computed_column(&self, name: &str) -> Option<&ComputedColumn> {
        self.computed.iter().find(|c| c.name == name)
    }

    pub fn is_computed(&self, name: &str) -> bool {
        self.computed_column(name).is_some()
    }

    /// Names of aggregates defined at grouping levels deeper than
    /// `level` — the aggregates that would be invalidated if levels >
    /// `level` were destroyed.
    pub fn aggregates_below_level(&self, level: usize) -> Vec<String> {
        self.computed
            .iter()
            .filter(|c| matches!(&c.def, ComputedDef::Aggregate { level: l, .. } if *l > level))
            .map(|c| c.name.clone())
            .collect()
    }

    /// Everything in the state that *requires* `column`: selections whose
    /// predicates mention it, computed definitions that read it, grouping
    /// bases and ordering keys that use it. Used to enforce "if a column
    /// that serves dependencies needs to be removed, all dependent columns
    /// must be removed first" (Sec. V-B).
    pub fn dependents_of(&self, column: &str) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.selections {
            if s.predicate.columns().contains(column) {
                out.push(format!("selection #{}", s.id));
            }
        }
        for c in &self.computed {
            if c.def.dependencies().contains(column) {
                out.push(format!("computed column {}", c.name));
            }
        }
        if self.spec.all_grouping_attributes().contains(column) {
            out.push("grouping".to_string());
        }
        if self.spec.finest_order.iter().any(|k| k.attribute == column) {
            out.push("ordering".to_string());
        }
        out
    }

    /// All columns referenced anywhere in the state (for validation after
    /// binary operators change the schema).
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.selections {
            out.extend(s.predicate.columns());
        }
        for c in &self.computed {
            out.extend(c.def.dependencies());
        }
        out.extend(self.spec.referenced_attributes());
        out
    }

    /// Rename a column across the entire state (housekeeping Rename).
    pub fn rename_column(&mut self, from: &str, to: &str) {
        for s in &mut self.selections {
            s.predicate = s.predicate.map_columns(&|c| {
                if c == from {
                    to.to_string()
                } else {
                    c.to_string()
                }
            });
        }
        for c in &mut self.computed {
            if c.name == from {
                c.name = to.to_string();
            }
            c.def.rename_column(from, to);
        }
        if self.projected_out.remove(from) {
            self.projected_out.insert(to.to_string());
        }
        self.spec.rename_attribute(from, to);
    }

    /// Clear the parts of the state that a binary operator *consumes*:
    /// selections and duplicate elimination are baked into the new base
    /// data and can no longer be rewritten ("we cannot go back beyond",
    /// Sec. V-A). Computed definitions, projections, grouping and ordering
    /// survive and keep auto-updating over the product/union result.
    pub fn consume_at_non_commutativity_point(&mut self) {
        self.selections.clear();
        self.dedup = false;
    }

    /// A human-readable listing of the whole state (the "History"-menu
    /// view of what is in force now).
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.selections {
            out.push(format!("selection {s}"));
        }
        for c in &self.computed {
            out.push(format!("computed {} = {}", c.name, c.def));
        }
        for p in &self.projected_out {
            out.push(format!("projected out {p}"));
        }
        if self.dedup {
            out.push("duplicate elimination".to_string());
        }
        if self.spec != Spec::empty() {
            out.push(self.spec.to_string());
        }
        out
    }
}

/// The *volatile* computed columns: aggregates and everything that
/// (transitively) reads one. Their cached values are functions of the
/// final multiset, so any edit that changes the surviving rows — e.g. a
/// narrowed selection — invalidates them; row-local formulas over base
/// columns are not affected. The incremental cache recomputes exactly
/// this set after narrowing, and refuses to narrow at all while a
/// selection reads one (the Sec. IV-B rank-crossing case).
pub fn volatile_columns(computed: &[ComputedColumn]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    loop {
        let mut changed = false;
        for c in computed {
            if out.contains(&c.name) {
                continue;
            }
            if c.def.is_aggregate() || c.def.dependencies().iter().any(|d| out.contains(d)) {
                out.insert(c.name.clone());
                changed = true;
            }
        }
        if !changed {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Direction, GroupLevel, OrderKey};
    use ssa_relation::AggFunc;

    fn sample() -> QueryState {
        let mut st = QueryState::new();
        st.add_selection(Expr::col("Year").eq(Expr::lit(2005)));
        st.add_selection(Expr::col("Price").lt(Expr::col("Avg_Price")));
        st.computed.push(ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            2,
            vec!["Model".into()],
        ));
        st.projected_out.insert("Mileage".into());
        st.spec
            .levels
            .push(GroupLevel::new(["Model"], Direction::Asc));
        st.spec.finest_order.push(OrderKey::asc("Price"));
        st
    }

    #[test]
    fn selection_ids_are_stable_and_unique() {
        let mut st = QueryState::new();
        let a = st.add_selection(Expr::col("x").gt(Expr::lit(1)));
        let b = st.add_selection(Expr::col("y").gt(Expr::lit(2)));
        assert_ne!(a, b);
        st.remove_selection(a).unwrap();
        let c = st.add_selection(Expr::col("z").gt(Expr::lit(3)));
        assert_ne!(b, c);
        assert!(st.selection(a).is_none());
        assert!(st.selection(c).is_some());
    }

    #[test]
    fn selections_on_column() {
        let st = sample();
        assert_eq!(st.selections_on("Year").len(), 1);
        assert_eq!(st.selections_on("Price").len(), 1);
        assert_eq!(st.selections_on("Avg_Price").len(), 1);
        assert!(st.selections_on("Model").is_empty());
    }

    #[test]
    fn replace_selection_in_place() {
        let mut st = sample();
        let id = st.selections[0].id;
        assert!(st.replace_selection(id, Expr::col("Year").eq(Expr::lit(2006))));
        assert_eq!(
            st.selection(id).unwrap().predicate,
            Expr::col("Year").eq(Expr::lit(2006))
        );
        assert!(!st.replace_selection(999, Expr::lit(true)));
    }

    #[test]
    fn dependents_cover_all_object_kinds() {
        let st = sample();
        let deps = st.dependents_of("Price");
        assert!(deps.iter().any(|d| d.contains("selection")));
        assert!(deps.iter().any(|d| d.contains("Avg_Price")));
        assert!(deps.iter().any(|d| d == "ordering"));
        let deps = st.dependents_of("Model");
        assert!(deps.iter().any(|d| d == "grouping"));
        let deps = st.dependents_of("Avg_Price");
        assert_eq!(deps.len(), 1); // only the second selection
    }

    #[test]
    fn aggregates_below_level() {
        let st = sample();
        assert_eq!(st.aggregates_below_level(1), vec!["Avg_Price".to_string()]);
        assert!(st.aggregates_below_level(2).is_empty());
    }

    #[test]
    fn rename_column_rewrites_everything() {
        let mut st = sample();
        st.rename_column("Price", "Cost");
        assert!(st.selections_on("Cost").len() == 1);
        assert!(st.computed[0].def.dependencies().contains("Cost"));
        assert_eq!(st.spec.finest_order[0].attribute, "Cost");
        st.rename_column("Mileage", "Miles");
        assert!(st.projected_out.contains("Miles"));
        st.rename_column("Avg_Price", "AvgCost");
        assert!(st.is_computed("AvgCost"));
        assert_eq!(st.selections_on("AvgCost").len(), 1);
    }

    #[test]
    fn consume_keeps_computed_and_spec() {
        let mut st = sample();
        st.dedup = true;
        st.consume_at_non_commutativity_point();
        assert!(st.selections.is_empty());
        assert!(!st.dedup);
        assert_eq!(st.computed.len(), 1);
        assert_eq!(st.spec.level_count(), 2);
        assert!(st.projected_out.contains("Mileage"));
    }

    #[test]
    fn referenced_columns_union() {
        let st = sample();
        let refs = st.referenced_columns();
        for c in ["Year", "Price", "Avg_Price", "Model"] {
            assert!(refs.contains(c), "missing {c}");
        }
    }

    #[test]
    fn describe_lists_state() {
        let mut st = sample();
        st.dedup = true;
        let d = st.describe();
        assert!(d.iter().any(|l| l.contains("selection")));
        assert!(d.iter().any(|l| l.contains("Avg_Price")));
        assert!(d.iter().any(|l| l.contains("projected out Mileage")));
        assert!(d.iter().any(|l| l.contains("duplicate elimination")));
    }
}
