//! Errors raised by spreadsheet-algebra operators.
//!
//! Several variants correspond to interactions the paper's interface
//! surfaces as dialogs: destroying a grouping that aggregates depend on
//! (Sec. VI-A "Ordering"), removing a column other operators need
//! (Sec. V-B), and joining/unioning incompatible sheets.

use ssa_relation::RelationError;
use std::fmt;

/// Error type for all spreadsheet operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SheetError {
    /// Bubbled-up error from the relational substrate.
    Relation(RelationError),
    /// A referenced column does not exist on this spreadsheet.
    UnknownColumn { name: String },
    /// A column with this name already exists.
    DuplicateColumn { name: String },
    /// The column is referenced by other operators and cannot be removed
    /// or modified; `dependents` lists what must be removed first.
    ColumnInUse {
        name: String,
        dependents: Vec<String>,
    },
    /// The operation would destroy grouping levels that carry aggregates.
    /// The paper's prototype refuses and asks the user to project the
    /// aggregates out first.
    GroupingInUse {
        level: usize,
        aggregates: Vec<String>,
    },
    /// τ was called with a basis that is not a strict superset of the
    /// current finest grouping basis.
    NotASuperset { basis: Vec<String> },
    /// λ or η referenced a grouping level that does not exist.
    NoSuchLevel { level: usize, levels: usize },
    /// Ordering attribute is invalid for the requested level (e.g. a
    /// grouping attribute of an outer level).
    BadOrderingAttribute { attribute: String, level: usize },
    /// An aggregate function was applied to a non-numeric column.
    NonNumericAggregate { func: String, column: String },
    /// Binary operator on sheets that are not union compatible.
    NotCompatible { detail: String },
    /// A named stored spreadsheet was not found.
    UnknownSheet { name: String },
    /// Attempt to modify an operation that lies behind a point of
    /// non-commutativity ("where data from other sheets has been pulled
    /// in we cannot go back beyond", Sec. V-A).
    BehindNonCommutativityPoint { description: String },
    /// The referenced selection (by id) does not exist in query state.
    UnknownSelection { id: u64 },
    /// Nothing to undo / redo.
    HistoryExhausted { redo: bool },
    /// The column exists but is currently projected out.
    ColumnHidden { name: String },
    /// Save/Open serialization failure.
    Persist { message: String },
    /// A [`crate::sheet::StoredSheet`] failed validation on open: its
    /// query state references columns the stored relation does not have,
    /// or its computed columns are cyclic. Hand-edited or corrupted
    /// persisted sheets surface here, at the open boundary, instead of
    /// erroring far from the cause at first evaluation.
    InvalidStored { detail: String },
    /// An internal engine invariant was broken. Debug builds assert
    /// before constructing this; release builds degrade to this typed
    /// error instead of panicking.
    Internal { detail: String },
    /// Cache self-audit failure: an incremental cache patch diverged from
    /// a from-scratch evaluation. `delta` names the incremental path that
    /// produced the divergence (e.g. `narrow`, `append-computed`).
    AuditDivergence { delta: String },
    /// A write-ahead log has a corrupt frame *before* its final frame.
    /// A torn final frame is the expected crash signature and is trimmed
    /// silently; damage earlier in the log means the file was corrupted
    /// after it was written, so recovery refuses to guess.
    TornLog { path: String, offset: u64 },
    /// A replication exchange referenced history this replica has already
    /// compacted into its base snapshot (an event sorting at or before
    /// the compaction frontier, or a peer whose version vector predates
    /// it). The peer must re-seed from a snapshot instead.
    BehindCompaction { detail: String },
}

impl fmt::Display for SheetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SheetError::Relation(e) => write!(f, "{e}"),
            SheetError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            SheetError::DuplicateColumn { name } => write!(f, "duplicate column `{name}`"),
            SheetError::ColumnInUse { name, dependents } => write!(
                f,
                "column `{name}` is used by {}; remove those first",
                dependents.join(", ")
            ),
            SheetError::GroupingInUse { level, aggregates } => write!(
                f,
                "grouping level {level} carries aggregate(s) {}; project them out first",
                aggregates.join(", ")
            ),
            SheetError::NotASuperset { basis } => write!(
                f,
                "grouping basis {{{}}} must strictly extend the current finest basis",
                basis.join(", ")
            ),
            SheetError::NoSuchLevel { level, levels } => {
                write!(f, "group level {level} does not exist (sheet has {levels})")
            }
            SheetError::BadOrderingAttribute { attribute, level } => {
                write!(f, "`{attribute}` cannot order groups at level {level}")
            }
            SheetError::NonNumericAggregate { func, column } => {
                write!(f, "{func} requires a numeric column, `{column}` is not")
            }
            SheetError::NotCompatible { detail } => write!(f, "sheets not compatible: {detail}"),
            SheetError::UnknownSheet { name } => write!(f, "no stored spreadsheet named `{name}`"),
            SheetError::BehindNonCommutativityPoint { description } => write!(
                f,
                "cannot modify `{description}`: it precedes a binary operator (point of non-commutativity)"
            ),
            SheetError::UnknownSelection { id } => write!(f, "no selection with id {id}"),
            SheetError::HistoryExhausted { redo } => {
                write!(f, "nothing to {}", if *redo { "redo" } else { "undo" })
            }
            SheetError::ColumnHidden { name } => {
                write!(f, "column `{name}` is projected out; reinstate it first")
            }
            SheetError::Persist { message } => write!(f, "persistence error: {message}"),
            SheetError::InvalidStored { detail } => {
                write!(f, "stored sheet failed validation: {detail}")
            }
            SheetError::Internal { detail } => {
                write!(f, "internal invariant broken: {detail}")
            }
            SheetError::AuditDivergence { delta } => write!(
                f,
                "cache audit: incremental `{delta}` patch diverged from full evaluation"
            ),
            SheetError::TornLog { path, offset } => write!(
                f,
                "write-ahead log `{path}` has a corrupt frame at offset {offset} before the log tail"
            ),
            SheetError::BehindCompaction { detail } => {
                write!(f, "behind compaction frontier: {detail}")
            }
        }
    }
}

impl std::error::Error for SheetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SheetError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for SheetError {
    fn from(e: RelationError) -> Self {
        match e {
            RelationError::UnknownColumn { name } => SheetError::UnknownColumn { name },
            RelationError::DuplicateColumn { name } => SheetError::DuplicateColumn { name },
            other => SheetError::Relation(other),
        }
    }
}

/// Result alias for spreadsheet operations.
pub type Result<T> = std::result::Result<T, SheetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_errors_lift_column_variants() {
        let e: SheetError = RelationError::UnknownColumn { name: "x".into() }.into();
        assert_eq!(e, SheetError::UnknownColumn { name: "x".into() });
        let e: SheetError = RelationError::DivisionByZero.into();
        assert_eq!(e, SheetError::Relation(RelationError::DivisionByZero));
    }

    #[test]
    fn messages_mention_the_remedy() {
        let e = SheetError::GroupingInUse {
            level: 2,
            aggregates: vec!["Avg_Price".into()],
        };
        assert!(e.to_string().contains("project them out"));
        let e = SheetError::ColumnInUse {
            name: "Avg_Price".into(),
            dependents: vec!["selection #3".into()],
        };
        assert!(e.to_string().contains("remove those first"));
    }
}
