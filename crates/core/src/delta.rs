//! Typed deltas between query states — the incremental cache's brain.
//!
//! Every state-editing operator calls `Spreadsheet::invalidate`, which
//! diffs the cached content fingerprint (`ContentKey`, crate-private)
//! against the new one and records a
//! [`StateDelta`]. `view` then picks the cheapest sound path:
//!
//! * [`StateDelta::Reorganize`] — content identical; re-sort / re-hide
//!   only (the Sec. III-A "organization does not change content" rule).
//! * [`StateDelta::Narrow`] — selections were added or tightened; the
//!   cached canonical rows are re-filtered in place.
//! * [`StateDelta::AppendComputed`] / [`StateDelta::RemoveComputed`] —
//!   one computed column appended (rank-last) or removed; one column is
//!   materialized or dropped over the cached rows.
//! * [`StateDelta::Full`] — anything else (widening, rank-crossing,
//!   dedup toggles, mixed edits) falls back to the full pipeline.
//!
//! The classification is deliberately conservative: a delta is only
//! non-`Full` when re-using the cache provably reproduces what the full
//! `eval` pipeline would compute (DESIGN.md §10 states the invariants).

use crate::computed::{compute_ranks, ComputedColumn};
use crate::state::{volatile_columns, QueryState, SelectionEntry};
use ssa_relation::Expr;
use std::collections::BTreeSet;

/// Fingerprint of the state components that determine the *content* of
/// the evaluated multiset. Grouping, ordering and projection are pure
/// data-*organization* ("they do not change the actual content",
/// Sec. III-A) — when only those change, a cached evaluation can be
/// reorganized instead of recomputed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ContentKey {
    pub(crate) selections: Vec<SelectionEntry>,
    pub(crate) computed: Vec<ComputedColumn>,
    pub(crate) dedup: bool,
}

impl ContentKey {
    pub(crate) fn of(state: &QueryState) -> ContentKey {
        ContentKey {
            selections: state.selections.clone(),
            computed: state.computed.clone(),
            dedup: state.dedup,
        }
    }
}

/// How the current query state relates to the most recent cached
/// evaluation — computed by [`Spreadsheet::invalidate`] on every state
/// edit and readable through [`Spreadsheet::last_delta`].
///
/// [`Spreadsheet::invalidate`]: crate::sheet::Spreadsheet
/// [`Spreadsheet::last_delta`]: crate::sheet::Spreadsheet::last_delta
#[derive(Debug, Clone, PartialEq)]
pub enum StateDelta {
    /// Content is unchanged; at most grouping, ordering or projection
    /// moved. The cached rows are re-sorted (or merely re-hidden) —
    /// never recomputed.
    Reorganize,
    /// Selections were added, or replaced by provably tighter ones
    /// ([`Expr::implies`]): the surviving multiset is a subset of the
    /// cached one, so the cache is narrowed by re-filtering its rows
    /// with `predicates` and re-aggregating what the smaller multiset
    /// invalidates.
    Narrow {
        /// The predicates that separate the new live set from the cached
        /// one (added selections and tightened replacements).
        predicates: Vec<Expr>,
    },
    /// Exactly one computed column was appended, and it lands rank-last,
    /// so materializing it over the cached rows reproduces the full
    /// pipeline's layout.
    AppendComputed {
        /// Name of the appended column.
        name: String,
    },
    /// Exactly one computed column was removed (operators guarantee it
    /// had no dependents); the cache drops that column in place.
    RemoveComputed {
        /// Name of the removed column.
        name: String,
    },
    /// Base-data rows were appended. The new rows flowed through the
    /// cached compiled selections, merge-inserted into the presentation
    /// permutation and group tree, and bumped the per-group aggregate
    /// accumulators — the query state itself is unchanged.
    RowsAppended {
        /// How many base rows the edit appended.
        count: usize,
    },
    /// Base-data rows were deleted; the cache narrowed by the survivor
    /// mask (aggregates recompute per retracted group — the
    /// recompute-on-retract rule that keeps Min/Max exact).
    RowsDeleted {
        /// How many base rows the edit removed.
        count: usize,
    },
    /// Base-data cells were updated in place (the key-change analysis
    /// proved no group membership, selection verdict or presentation
    /// position could move; otherwise the edit is modeled as
    /// delete + append and reports those deltas instead).
    CellsUpdated {
        /// How many cells the edit overwrote.
        count: usize,
    },
    /// No sound shortcut: re-run the full pipeline.
    Full {
        /// Why the classifier fell back (for tests and debugging).
        reason: &'static str,
    },
}

impl StateDelta {
    /// Shorthand used by tests: does this delta avoid the full pipeline?
    pub fn is_incremental(&self) -> bool {
        !matches!(self, StateDelta::Full { .. })
    }
}

impl std::fmt::Display for StateDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateDelta::Reorganize => write!(f, "reorganize"),
            StateDelta::Narrow { predicates } => {
                write!(f, "narrow ({} predicate(s))", predicates.len())
            }
            StateDelta::AppendComputed { name } => write!(f, "append computed `{name}`"),
            StateDelta::RemoveComputed { name } => write!(f, "remove computed `{name}`"),
            StateDelta::RowsAppended { count } => write!(f, "rows appended ({count})"),
            StateDelta::RowsDeleted { count } => write!(f, "rows deleted ({count})"),
            StateDelta::CellsUpdated { count } => write!(f, "cells updated ({count})"),
            StateDelta::Full { reason } => write!(f, "full ({reason})"),
        }
    }
}

/// Diff a cached content key against the current one.
///
/// `base_columns` are the base relation's column names (rank 0 for the
/// precedence analysis of Sec. IV-B).
pub(crate) fn classify(
    old: &ContentKey,
    new: &ContentKey,
    base_columns: &BTreeSet<String>,
) -> StateDelta {
    // Failpoint: declare no sound delta, forcing callers onto the full
    // evaluation path (exercises the fallback under fault injection).
    #[cfg(feature = "fault-injection")]
    if ssa_relation::fault::should_fire("delta.classify") {
        return StateDelta::Full {
            reason: "fault injected",
        };
    }
    if old == new {
        return StateDelta::Reorganize;
    }
    if old.dedup != new.dedup {
        // Dedup works on *base* tuples, upstream of every selection: a
        // toggle re-decides which duplicates survive — not a subset of
        // the cached rows in general.
        return StateDelta::Full {
            reason: "duplicate elimination toggled",
        };
    }
    if old.computed != new.computed {
        if old.selections != new.selections {
            return StateDelta::Full {
                reason: "selections and computed columns both changed",
            };
        }
        return classify_computed(&old.computed, &new.computed, base_columns);
    }
    classify_selections(old, new)
}

fn classify_computed(
    old: &[ComputedColumn],
    new: &[ComputedColumn],
    base_columns: &BTreeSet<String>,
) -> StateDelta {
    if new.len() == old.len() + 1 && new[..old.len()] == *old {
        // The canonical layout orders computed columns by *rank* (stable
        // within a rank), not by definition order: the append shortcut is
        // only layout-preserving when the new column's rank is >= every
        // existing one, i.e. it lands in the last schema position exactly
        // as a plain append would.
        let Some(ranks) = compute_ranks(base_columns, new) else {
            return StateDelta::Full {
                reason: "computed dependencies do not resolve",
            };
        };
        let max_prior = ranks[..old.len()].iter().copied().max().unwrap_or(0);
        if ranks[old.len()] < max_prior {
            return StateDelta::Full {
                reason: "appended computed column is not rank-last",
            };
        }
        return StateDelta::AppendComputed {
            name: new[old.len()].name.clone(),
        };
    }
    if old.len() == new.len() + 1 {
        if let Some(name) = removed_one(old, new) {
            // Remaining columns keep their ranks (the removed column had
            // no dependents), so the cached layout minus one column is
            // exactly the fresh layout.
            return StateDelta::RemoveComputed { name };
        }
    }
    StateDelta::Full {
        reason: "computed columns changed",
    }
}

/// If `new` is `old` with exactly one element removed (order preserved),
/// return the removed column's name.
fn removed_one(old: &[ComputedColumn], new: &[ComputedColumn]) -> Option<String> {
    let mut skipped = None;
    let mut j = 0;
    for c in old {
        if j < new.len() && new[j] == *c {
            j += 1;
        } else if skipped.is_none() {
            skipped = Some(c.name.clone());
        } else {
            return None;
        }
    }
    if j == new.len() {
        skipped
    } else {
        None
    }
}

fn classify_selections(old: &ContentKey, new: &ContentKey) -> StateDelta {
    // Sound narrowing needs selections to commute with the cached
    // step-3/step-4 interleaving: a predicate over an aggregate (or
    // anything downstream of one) reads values that re-aggregation over
    // the narrowed multiset will change — the Sec. IV-B rank-crossing
    // case, which must replay the full pipeline.
    let volatile = volatile_columns(&new.computed);
    if new
        .selections
        .iter()
        .any(|s| s.predicate.columns().iter().any(|c| volatile.contains(c)))
    {
        return StateDelta::Full {
            reason: "a selection reads an aggregate-dependent column",
        };
    }
    let mut predicates = Vec::new();
    for o in &old.selections {
        match new.selections.iter().find(|n| n.id == o.id) {
            None => {
                return StateDelta::Full {
                    reason: "a selection was removed (widening)",
                }
            }
            Some(n) if n.predicate == o.predicate => {}
            Some(n) if n.predicate.implies(&o.predicate) => {
                predicates.push(n.predicate.clone());
            }
            Some(_) => {
                return StateDelta::Full {
                    reason: "a selection was widened or is incomparable",
                }
            }
        }
    }
    for n in &new.selections {
        if !old.selections.iter().any(|o| o.id == n.id) {
            predicates.push(n.predicate.clone());
        }
    }
    StateDelta::Narrow { predicates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_relation::AggFunc;

    fn key(selections: Vec<(u64, Expr)>, computed: Vec<ComputedColumn>, dedup: bool) -> ContentKey {
        ContentKey {
            selections: selections
                .into_iter()
                .map(|(id, predicate)| SelectionEntry { id, predicate })
                .collect(),
            computed,
            dedup,
        }
    }

    fn base() -> BTreeSet<String> {
        ["Price", "Year", "Model"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    fn lt(col: &str, v: i64) -> Expr {
        Expr::col(col).lt(Expr::lit(v))
    }

    #[test]
    fn identical_content_is_reorganize() {
        let k = key(vec![(1, lt("Price", 100))], vec![], false);
        assert_eq!(classify(&k, &k.clone(), &base()), StateDelta::Reorganize);
    }

    #[test]
    fn added_and_tightened_selections_narrow() {
        let old = key(vec![(1, lt("Price", 100))], vec![], false);
        let added = key(
            vec![(1, lt("Price", 100)), (2, lt("Year", 2005))],
            vec![],
            false,
        );
        assert_eq!(
            classify(&old, &added, &base()),
            StateDelta::Narrow {
                predicates: vec![lt("Year", 2005)]
            }
        );
        let tightened = key(vec![(1, lt("Price", 50))], vec![], false);
        assert_eq!(
            classify(&old, &tightened, &base()),
            StateDelta::Narrow {
                predicates: vec![lt("Price", 50)]
            }
        );
    }

    #[test]
    fn widening_and_removal_fall_back() {
        let old = key(vec![(1, lt("Price", 100))], vec![], false);
        let widened = key(vec![(1, lt("Price", 200))], vec![], false);
        assert!(!classify(&old, &widened, &base()).is_incremental());
        let removed = key(vec![], vec![], false);
        assert!(!classify(&old, &removed, &base()).is_incremental());
    }

    #[test]
    fn dedup_toggle_falls_back() {
        let old = key(vec![], vec![], false);
        let new = key(vec![], vec![], true);
        assert!(!classify(&old, &new, &base()).is_incremental());
    }

    #[test]
    fn aggregate_reading_selection_falls_back() {
        let agg = ComputedColumn::aggregate("Avg_Price", AggFunc::Avg, "Price", 1, Vec::new());
        let old = key(vec![], vec![agg.clone()], false);
        let new = key(
            vec![(1, Expr::col("Price").le(Expr::col("Avg_Price")))],
            vec![agg],
            false,
        );
        assert_eq!(
            classify(&old, &new, &base()),
            StateDelta::Full {
                reason: "a selection reads an aggregate-dependent column"
            }
        );
    }

    #[test]
    fn append_and_remove_computed() {
        let f = ComputedColumn::formula("Double", Expr::col("Price").mul(Expr::lit(2)));
        let old = key(vec![], vec![], false);
        let new = key(vec![], vec![f.clone()], false);
        assert_eq!(
            classify(&old, &new, &base()),
            StateDelta::AppendComputed {
                name: "Double".to_string()
            }
        );
        assert_eq!(
            classify(&new, &old, &base()),
            StateDelta::RemoveComputed {
                name: "Double".to_string()
            }
        );
    }

    #[test]
    fn rank_crossing_append_falls_back() {
        // Existing rank-2 column (reads another computed column); a new
        // rank-1 formula would slot *before* it in the canonical layout.
        let f1 = ComputedColumn::formula("Double", Expr::col("Price").mul(Expr::lit(2)));
        let f2 = ComputedColumn::formula("Quad", Expr::col("Double").mul(Expr::lit(2)));
        let old = key(vec![], vec![f1.clone(), f2.clone()], false);
        let low = ComputedColumn::formula("Half", Expr::col("Price").div(Expr::lit(2)));
        let new = key(vec![], vec![f1, f2, low], false);
        assert_eq!(
            classify(&old, &new, &base()),
            StateDelta::Full {
                reason: "appended computed column is not rank-last"
            }
        );
    }
}
