//! Wilcoxon signed-rank test — a *paired* alternative to the paper's
//! Mann-Whitney analysis.
//!
//! The study design is actually paired (the same ten subjects used both
//! tools on each query), which Mann-Whitney ignores. The paper reports
//! Mann-Whitney; we reproduce that, and additionally run the
//! signed-rank test as a robustness check (`repro significance` prints
//! both). For n = 10 pairs the exact null distribution is enumerable
//! (2¹⁰ sign assignments).

use crate::descriptive::{midranks, normal_cdf};

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wilcoxon {
    /// Sum of ranks of positive differences (`W+`).
    pub w_plus: f64,
    /// Number of non-zero pairs actually ranked.
    pub n_used: usize,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Exact enumeration (small n) or normal approximation.
    pub exact: bool,
}

/// Exact enumeration limit: 2^20 sign patterns is still instant.
const EXACT_LIMIT: usize = 20;

/// Run the test on paired samples (zero differences are dropped, ties
/// among |differences| get midranks).
///
/// # Panics
/// Panics if the samples have different lengths or are empty.
pub fn wilcoxon_signed_rank(x: &[f64], y: &[f64]) -> Wilcoxon {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    assert!(!x.is_empty(), "samples must be non-empty");
    let diffs: Vec<f64> = x
        .iter()
        .zip(y)
        .map(|(a, b)| a - b)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        // All pairs tied: no evidence either way.
        return Wilcoxon {
            w_plus: 0.0,
            n_used: 0,
            p_two_sided: 1.0,
            exact: true,
        };
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = midranks(&abs);
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| *r)
        .sum();

    if n <= EXACT_LIMIT {
        // Exact: enumerate all sign assignments over the observed ranks.
        let total = w_plus.min(ranks.iter().sum::<f64>() - w_plus);
        let mut hits = 0u64;
        let combos = 1u64 << n;
        for mask in 0..combos {
            let w: f64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| ranks[i])
                .sum();
            let w_min = w.min(ranks.iter().sum::<f64>() - w);
            if w_min <= total + 1e-9 {
                hits += 1;
            }
        }
        Wilcoxon {
            w_plus,
            n_used: n,
            p_two_sided: (hits as f64 / combos as f64).min(1.0),
            exact: true,
        }
    } else {
        let nf = n as f64;
        let mu = nf * (nf + 1.0) / 4.0;
        let sigma = (nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0).sqrt();
        let z = ((w_plus - mu).abs() - 0.5).max(0.0) / sigma;
        Wilcoxon {
            w_plus,
            n_used: n,
            p_two_sided: 2.0 * (1.0 - normal_cdf(z)),
            exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_dominance_ten_pairs() {
        // every x below its pair: W+ = 0, exact p = 2/2^10
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = (1..=10).map(|i| i as f64 + 100.0).collect();
        let r = wilcoxon_signed_rank(&x, &y);
        assert!(r.exact);
        assert_eq!(r.w_plus, 0.0);
        assert!((r.p_two_sided - 2.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_differences_not_significant() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let r = wilcoxon_signed_rank(&x, &y);
        assert!(r.p_two_sided > 0.9);
    }

    #[test]
    fn zero_differences_dropped() {
        let x = [1.0, 2.0, 3.0, 10.0];
        let y = [1.0, 2.0, 3.0, 0.0];
        let r = wilcoxon_signed_rank(&x, &y);
        assert_eq!(r.n_used, 1);
        assert_eq!(r.w_plus, 1.0);
        assert_eq!(r.p_two_sided, 1.0); // single pair can't reach 0.05
    }

    #[test]
    fn all_tied_pairs() {
        let x = [5.0, 5.0];
        let r = wilcoxon_signed_rank(&x, &x);
        assert_eq!(r.n_used, 0);
        assert_eq!(r.p_two_sided, 1.0);
    }

    #[test]
    fn normal_approximation_for_large_n() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64 + 5.0).collect();
        let r = wilcoxon_signed_rank(&x, &y);
        assert!(!r.exact);
        assert!(r.p_two_sided < 0.001);
    }

    #[test]
    fn agrees_with_mann_whitney_on_strong_effects() {
        let x = [10.0, 12.0, 9.0, 11.0, 10.5, 9.5, 12.5, 11.5, 10.2, 9.8];
        let y = [30.0, 33.0, 28.0, 31.0, 29.0, 32.0, 27.0, 34.0, 30.5, 31.5];
        let w = wilcoxon_signed_rank(&x, &y);
        let mw = crate::mann_whitney::mann_whitney(&x, &y);
        assert!(w.p_two_sided < 0.01);
        assert!(mw.p_two_sided < 0.01);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_lengths_panic() {
        wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }
}
