//! Fisher's exact test on a 2×2 contingency table — the paper's
//! correctness claim: "Using Fisher's exact test we conclude that
//! SheetMusiq is statistically better than Navicat (in leading to more
//! correctly answered queries), with p value < 0.004" over totals 95/100
//! vs 81/100 (Sec. VII-A.3).

/// A 2×2 table:
///
/// ```text
///            success   failure
/// group 1       a         b
/// group 2       c         d
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2x2 {
    pub a: u64,
    pub b: u64,
    pub c: u64,
    pub d: u64,
}

impl Table2x2 {
    pub fn new(a: u64, b: u64, c: u64, d: u64) -> Table2x2 {
        Table2x2 { a, b, c, d }
    }

    /// From success counts out of fixed group sizes.
    pub fn from_successes(s1: u64, n1: u64, s2: u64, n2: u64) -> Table2x2 {
        assert!(s1 <= n1 && s2 <= n2, "successes cannot exceed group size");
        Table2x2 {
            a: s1,
            b: n1 - s1,
            c: s2,
            d: n2 - s2,
        }
    }
}

/// ln(n!) via Stirling-free accumulation for the modest totals of study
/// tables (n ≤ a few thousand).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).ln()).sum()
}

/// Hypergeometric probability of the exact table (fixed margins).
fn table_probability(t: &Table2x2) -> f64 {
    let (a, b, c, d) = (t.a, t.b, t.c, t.d);
    let n = a + b + c + d;
    (ln_factorial(a + b) + ln_factorial(c + d) + ln_factorial(a + c) + ln_factorial(b + d)
        - ln_factorial(n)
        - ln_factorial(a)
        - ln_factorial(b)
        - ln_factorial(c)
        - ln_factorial(d))
    .exp()
}

/// Two-sided Fisher's exact p-value: sum of probabilities of all tables
/// with the same margins whose probability does not exceed the observed
/// table's (the standard "sum of small p" definition).
pub fn fisher_exact_two_sided(t: &Table2x2) -> f64 {
    let row1 = t.a + t.b;
    let col1 = t.a + t.c;
    let n = t.a + t.b + t.c + t.d;
    let p_obs = table_probability(t);
    let a_min = col1.saturating_sub(n - row1);
    let a_max = row1.min(col1);
    let mut p = 0.0;
    for a in a_min..=a_max {
        let cand = Table2x2 {
            a,
            b: row1 - a,
            c: col1 - a,
            d: n + a - row1 - col1,
        };
        let pa = table_probability(&cand);
        if pa <= p_obs * (1.0 + 1e-9) {
            p += pa;
        }
    }
    p.min(1.0)
}

/// One-sided p-value that group 1's success rate exceeds group 2's
/// (sum over tables at least as extreme in that direction).
pub fn fisher_exact_greater(t: &Table2x2) -> f64 {
    let row1 = t.a + t.b;
    let col1 = t.a + t.c;
    let n = t.a + t.b + t.c + t.d;
    let a_max = row1.min(col1);
    let mut p = 0.0;
    for a in t.a..=a_max {
        let cand = Table2x2 {
            a,
            b: row1 - a,
            c: col1 - a,
            d: n + a - row1 - col1,
        };
        p += table_probability(&cand);
    }
    p.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one_over_margin() {
        let t = Table2x2::new(3, 7, 5, 5);
        let row1 = t.a + t.b;
        let col1 = t.a + t.c;
        let n = t.a + t.b + t.c + t.d;
        let a_min = col1.saturating_sub(n - row1);
        let a_max = row1.min(col1);
        let total: f64 = (a_min..=a_max)
            .map(|a| {
                table_probability(&Table2x2 {
                    a,
                    b: row1 - a,
                    c: col1 - a,
                    d: n + a - row1 - col1,
                })
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_correctness_table_is_significant() {
        // 95/100 correct (SheetMusiq) vs 81/100 (Navicat): p < 0.004.
        let t = Table2x2::from_successes(95, 100, 81, 100);
        let p = fisher_exact_two_sided(&t);
        assert!(p < 0.004, "p = {p}");
        assert!(p > 0.0001, "p = {p} suspiciously small");
        let p1 = fisher_exact_greater(&t);
        assert!(p1 < p, "one-sided must be smaller: {p1} vs {p}");
    }

    #[test]
    fn balanced_table_not_significant() {
        let t = Table2x2::from_successes(8, 10, 8, 10);
        assert!(fisher_exact_two_sided(&t) > 0.99);
    }

    #[test]
    fn textbook_tea_tasting() {
        // Fisher's lady tasting tea: 3/4 vs 1/4 → one-sided p = 0.2429.
        let t = Table2x2::new(3, 1, 1, 3);
        let p = fisher_exact_greater(&t);
        assert!((p - (16.0 + 1.0) / 70.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn extreme_table() {
        let t = Table2x2::from_successes(10, 10, 0, 10);
        let p = fisher_exact_two_sided(&t);
        // both extremes: 2 / C(20,10)
        assert!((p - 2.0 / 184_756.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_margins() {
        // No failures at all: only one possible table, p = 1.
        let t = Table2x2::from_successes(10, 10, 10, 10);
        assert!((fisher_exact_two_sided(&t) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed")]
    fn invalid_successes_panic() {
        Table2x2::from_successes(11, 10, 0, 10);
    }
}
