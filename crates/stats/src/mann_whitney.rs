//! Mann-Whitney U test (Wilcoxon rank-sum) — the test behind the paper's
//! speed claim: "Using the Mann-Whitney test we found the speed result is
//! statistically significant (with p-value < 0.002) for all queries except
//! query 5, 7, and 10" (Sec. VII-A.2).
//!
//! For the study's sample sizes (10 vs 10) we compute the *exact*
//! two-sided p-value by enumerating all C(n1+n2, n1) group assignments of
//! the pooled observations (ties handled exactly); the normal
//! approximation with tie correction is also provided for larger samples.

use crate::descriptive::{midranks, normal_cdf};

/// Result of a Mann-Whitney test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// U statistic of the first sample.
    pub u1: f64,
    /// U statistic of the second sample (`u1 + u2 = n1·n2`).
    pub u2: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Whether the p-value is exact (enumeration) or approximate (normal).
    pub exact: bool,
}

/// Compute both U statistics from midranks.
pub fn u_statistics(x: &[f64], y: &[f64]) -> (f64, f64) {
    let n1 = x.len() as f64;
    let n2 = y.len() as f64;
    let pooled: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
    let ranks = midranks(&pooled);
    let r1: f64 = ranks[..x.len()].iter().sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let u2 = n1 * n2 - u1;
    (u1, u2)
}

/// Exact enumeration threshold: C(20,10) ≈ 1.8e5 is instant; beyond ~24
/// pooled observations we switch to the normal approximation.
const EXACT_LIMIT: usize = 24;

/// Run the test. Chooses exact enumeration for small pooled sizes.
pub fn mann_whitney(x: &[f64], y: &[f64]) -> MannWhitney {
    assert!(!x.is_empty() && !y.is_empty(), "samples must be non-empty");
    let (u1, u2) = u_statistics(x, y);
    if x.len() + y.len() <= EXACT_LIMIT {
        let p = exact_p(x, y, u1.min(u2));
        MannWhitney {
            u1,
            u2,
            p_two_sided: p,
            exact: true,
        }
    } else {
        let p = normal_p(x, y, u1);
        MannWhitney {
            u1,
            u2,
            p_two_sided: p,
            exact: false,
        }
    }
}

/// Exact two-sided p-value: probability, over all equally likely
/// assignments of the pooled values to the two groups, of a min-U at most
/// as large as observed.
fn exact_p(x: &[f64], y: &[f64], observed_min_u: f64) -> f64 {
    let n1 = x.len();
    let n = n1 + y.len();
    let pooled: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
    let ranks = midranks(&pooled);
    let n1f = n1 as f64;
    let n2f = y.len() as f64;

    let mut hits = 0u64;
    let mut total = 0u64;
    // Iterate over all n1-subsets of indices via combinations.
    let mut comb: Vec<usize> = (0..n1).collect();
    loop {
        let r1: f64 = comb.iter().map(|&i| ranks[i]).sum();
        let u1 = r1 - n1f * (n1f + 1.0) / 2.0;
        let u2 = n1f * n2f - u1;
        if u1.min(u2) <= observed_min_u + 1e-9 {
            hits += 1;
        }
        total += 1;
        // next combination
        let mut i = n1;
        loop {
            if i == 0 {
                return hits as f64 / total as f64;
            }
            i -= 1;
            if comb[i] != i + n - n1 {
                break;
            }
        }
        comb[i] += 1;
        for j in i + 1..n1 {
            comb[j] = comb[j - 1] + 1;
        }
    }
}

/// Normal approximation with tie correction and continuity correction.
fn normal_p(x: &[f64], y: &[f64], u1: f64) -> f64 {
    let n1 = x.len() as f64;
    let n2 = y.len() as f64;
    let n = n1 + n2;
    let mu = n1 * n2 / 2.0;
    // tie correction: sum over tie groups of (t^3 - t)
    let mut pooled: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
    pooled.sort_by(|a, b| a.total_cmp(b));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1] == pooled[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let sigma2 = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if sigma2 <= 0.0 {
        return 1.0; // all observations identical
    }
    let z = (u1 - mu).abs() - 0.5;
    let z = z.max(0.0) / sigma2.sqrt();
    2.0 * (1.0 - normal_cdf(z))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u_statistics_sum_to_n1n2() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0, 7.0];
        let (u1, u2) = u_statistics(&x, &y);
        assert_eq!(u1 + u2, 12.0);
        assert_eq!(u1, 0.0); // x completely below y
        assert_eq!(u2, 12.0);
    }

    #[test]
    fn complete_separation_small_sample() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 11.0, 12.0, 13.0];
        let r = mann_whitney(&x, &y);
        assert!(r.exact);
        // exact two-sided p for complete separation with 4 vs 4:
        // 2 / C(8,4) = 2/70
        assert!((r.p_two_sided - 2.0 / 70.0).abs() < 1e-9);
    }

    #[test]
    fn identical_samples_not_significant() {
        let x = [5.0, 6.0, 7.0, 8.0];
        let y = [5.0, 6.0, 7.0, 8.0];
        let r = mann_whitney(&x, &y);
        assert!(r.p_two_sided > 0.9);
    }

    #[test]
    fn ten_vs_ten_complete_separation_beats_paper_threshold() {
        // The paper's setting: 10 subjects per tool. Complete separation
        // gives p = 2/C(20,10) ≈ 1.08e-5 < 0.002.
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = (101..=110).map(|i| i as f64).collect();
        let r = mann_whitney(&x, &y);
        assert!(r.exact);
        assert!(r.p_two_sided < 0.002, "p = {}", r.p_two_sided);
        assert!((r.p_two_sided - 2.0 / 184_756.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_samples_not_significant() {
        let x = [3.0, 9.0, 4.0, 8.0, 5.0];
        let y = [4.0, 7.0, 6.0, 5.0, 10.0];
        let r = mann_whitney(&x, &y);
        assert!(r.p_two_sided > 0.2);
    }

    #[test]
    fn exact_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [2.0, 4.0, 5.0, 6.0];
        let r = mann_whitney(&x, &y);
        assert!(r.exact);
        assert!(r.p_two_sided > 0.0 && r.p_two_sided <= 1.0);
    }

    #[test]
    fn normal_approximation_for_large_samples() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64 + 20.0).collect();
        let r = mann_whitney(&x, &y);
        assert!(!r.exact);
        assert!(r.p_two_sided < 0.001);
    }

    #[test]
    fn normal_approx_with_all_identical_values() {
        let x = vec![1.0; 20];
        let y = vec![1.0; 20];
        let r = mann_whitney(&x, &y);
        assert_eq!(r.p_two_sided, 1.0);
    }

    #[test]
    fn exact_agrees_with_normal_roughly() {
        let x = [12.0, 15.0, 18.0, 21.0, 24.0, 27.0, 30.0, 33.0, 36.0, 39.0];
        let y = [14.0, 17.0, 20.0, 23.0, 26.0, 29.0, 32.0, 35.0, 38.0, 41.0];
        let exact = mann_whitney(&x, &y).p_two_sided;
        let approx = normal_p(&x, &y, u_statistics(&x, &y).0);
        assert!(
            (exact - approx).abs() < 0.1,
            "exact {exact} vs approx {approx}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        mann_whitney(&[], &[1.0]);
    }
}
