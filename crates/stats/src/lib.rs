//! # ssa-stats — the statistics behind the paper's evaluation claims
//!
//! * [`descriptive`] — means (Fig. 3), standard deviations (Fig. 4),
//!   midranks, normal CDF;
//! * [`mann_whitney`](mod@mann_whitney) — exact + approximate
//!   Mann-Whitney U (the speed significance test, "p < 0.002");
//! * [`fisher`] — Fisher's exact test on 2×2 tables (the correctness
//!   significance test, "p < 0.004");
//! * [`wilcoxon`] — Wilcoxon signed-rank, the paired-design robustness
//!   check the reproduction runs alongside the paper's analysis.
//!
//! Pure-algorithm crate with no dependencies; exactness over speed, since
//! study sample sizes are tiny (10 subjects, 100 task runs).

pub mod descriptive;
pub mod fisher;
pub mod mann_whitney;
pub mod wilcoxon;

pub use descriptive::{mean, median, midranks, normal_cdf, stddev_population, stddev_sample};
pub use fisher::{fisher_exact_greater, fisher_exact_two_sided, Table2x2};
pub use mann_whitney::{mann_whitney, u_statistics, MannWhitney};
pub use wilcoxon::{wilcoxon_signed_rank, Wilcoxon};
