//! Descriptive statistics for the evaluation reports (means for Fig. 3,
//! standard deviations for Fig. 4).

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation (divides by n) — what a spreadsheet's
/// STDEVP reports and what Fig. 4 plots per query.
pub fn stddev_population(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt())
}

/// Sample standard deviation (divides by n − 1); `None` for fewer than
/// two observations.
pub fn stddev_sample(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt())
}

/// Median (average of middle two for even n).
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Midranks of the pooled sample (ties share the average rank) — the rank
/// transform behind the Mann-Whitney test.
pub fn midranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // positions i..=j are tied; average rank (1-based)
        let avg = ((i + 1 + j + 1) as f64) / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7 — ample for reporting p-value thresholds).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn stddevs() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev_population(&xs).unwrap() - 2.0).abs() < 1e-12);
        assert!((stddev_sample(&xs).unwrap() - 2.138089935).abs() < 1e-6);
        assert_eq!(stddev_sample(&[1.0]), None);
        assert_eq!(stddev_population(&[]), None);
        assert_eq!(stddev_population(&[5.0]), Some(0.0));
    }

    #[test]
    fn midranks_without_ties() {
        assert_eq!(midranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn midranks_with_ties_average() {
        // 10, 20, 20, 30 → ranks 1, 2.5, 2.5, 4
        assert_eq!(
            midranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        // all equal
        assert_eq!(midranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(6.0) > 0.999999);
        assert!(normal_cdf(-6.0) < 1e-6);
    }
}
