//! Streaming order feed: a seeded generator that emits `orders`-shaped
//! rows at a configurable rate, for driving the streaming base-data
//! delta paths (`Spreadsheet::append_rows`) the way a live ticker would.
//!
//! Like [`crate::gen`], the feed is fully determined by its config and
//! seed — replaying a session replays the identical row sequence. The
//! feed does not sleep: callers own the clock and ask for "everything
//! due by now" via [`OrderFeed::tick`], which makes the generator usable
//! from benches (simulated time) and servers (wall time) alike.

use crate::schema;
use ssa_relation::rng::Rng;
use ssa_relation::{Tuple, Value};

/// Feed shape and rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedConfig {
    /// Rows emitted per second of feed time (used by [`OrderFeed::tick`];
    /// direct [`OrderFeed::batch`] calls ignore it).
    pub rows_per_sec: f64,
    /// Customer-key range the generated orders reference.
    pub customers: usize,
    /// Order key of the first emitted row (continue an existing table by
    /// passing its length).
    pub first_orderkey: i64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            rows_per_sec: 100.0,
            customers: 150,
            first_orderkey: 0,
        }
    }
}

/// A deterministic stream of `orders` rows.
#[derive(Debug, Clone)]
pub struct OrderFeed {
    config: FeedConfig,
    rng: Rng,
    next_orderkey: i64,
    /// Fractional rows owed from previous ticks, so a 2.5-rows/sec feed
    /// ticked every second alternates 2 and 3 rows instead of losing the
    /// halves.
    carry: f64,
}

impl OrderFeed {
    pub fn new(config: FeedConfig, seed: u64) -> OrderFeed {
        OrderFeed {
            next_orderkey: config.first_orderkey,
            config,
            rng: Rng::seed_from_u64(seed),
            carry: 0.0,
        }
    }

    /// The order key the next emitted row will carry.
    pub fn next_orderkey(&self) -> i64 {
        self.next_orderkey
    }

    /// Emit one row, shaped exactly like [`schema::orders`]:
    /// `(orderkey, custkey, orderstatus, totalprice, orderdate, orderpriority)`.
    pub fn next_order(&mut self) -> Tuple {
        let rng = &mut self.rng;
        let year = rng.gen_range(1992..=1998);
        let month = rng.gen_range(1..=12);
        let day = rng.gen_range(1..=28);
        let orderdate = (year * 10000 + month * 100 + day) as i64;
        let total = {
            let raw = rng.gen_range(900.0..180_000.0);
            (raw * 100.0).round() / 100.0
        };
        let key = self.next_orderkey;
        self.next_orderkey += 1;
        Tuple::new(vec![
            Value::Int(key),
            Value::Int(rng.gen_range(0..self.config.customers.max(1)) as i64),
            Value::str(["O", "F", "P"][rng.gen_range(0..3usize)]),
            Value::Float(total),
            Value::Int(orderdate),
            Value::str(schema::ORDER_PRIORITIES[rng.gen_range(0..5usize)]),
        ])
    }

    /// Emit exactly `n` rows.
    pub fn batch(&mut self, n: usize) -> Vec<Tuple> {
        (0..n).map(|_| self.next_order()).collect()
    }

    /// Emit every row due after `elapsed_secs` of feed time at the
    /// configured rate, carrying fractional rows to the next tick.
    pub fn tick(&mut self, elapsed_secs: f64) -> Vec<Tuple> {
        let due = self.carry + self.config.rows_per_sec * elapsed_secs.max(0.0);
        let n = due.floor().max(0.0) as usize;
        self.carry = due - n as f64;
        self.batch(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_relation::Relation;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = OrderFeed::new(FeedConfig::default(), 42);
        let mut b = OrderFeed::new(FeedConfig::default(), 42);
        assert_eq!(a.batch(10), b.batch(10));
        let mut c = OrderFeed::new(FeedConfig::default(), 43);
        assert_ne!(a.batch(10), c.batch(10));
    }

    #[test]
    fn rows_match_orders_schema() {
        let mut feed = OrderFeed::new(FeedConfig::default(), 7);
        let mut orders = Relation::new("orders", schema::orders());
        orders.append_rows(feed.batch(25)).unwrap();
        assert_eq!(orders.len(), 25);
        // Order keys are sequential from the configured start.
        let Value::Int(first) = orders.rows()[0].get(0) else {
            panic!("orderkey must be Int");
        };
        assert_eq!(*first, 0);
        assert_eq!(feed.next_orderkey(), 25);
    }

    #[test]
    fn tick_respects_rate_with_carry() {
        let mut feed = OrderFeed::new(
            FeedConfig {
                rows_per_sec: 2.5,
                ..FeedConfig::default()
            },
            1,
        );
        let counts: Vec<usize> = (0..4).map(|_| feed.tick(1.0).len()).collect();
        // 2.5 rows/sec over 4 one-second ticks = exactly 10 rows.
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c == 2 || c == 3));
    }

    #[test]
    fn first_orderkey_continues_a_table() {
        let mut feed = OrderFeed::new(
            FeedConfig {
                first_orderkey: 1500,
                ..FeedConfig::default()
            },
            1,
        );
        let Value::Int(k) = *feed.next_order().get(0) else {
            panic!()
        };
        assert_eq!(k, 1500);
    }
}
