//! Seeded, deterministic TPC-H-style data generator.
//!
//! The paper used the TPC-H demonstration dataset; we generate an
//! equivalent synthetic instance. Generation is fully determined by
//! `(GenConfig, seed)`, so every figure in EXPERIMENTS.md regenerates
//! byte-identically.

use crate::schema;
use ssa_relation::rng::Rng;
use ssa_relation::{Catalog, Relation, Tuple, Value};

/// Table sizes. `scale(1.0)` approximates a 1-MB-class instance —
/// comfortably laptop-sized while exercising every code path; raise the
/// factor for benchmarking sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    pub customers: usize,
    pub orders: usize,
    /// Expected lineitems per order (actual count is 1..=2×this-1).
    pub lines_per_order: usize,
    pub parts: usize,
    pub suppliers: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig::scale(1.0)
    }
}

impl GenConfig {
    /// Proportional sizing. `factor = 1.0` gives 150 customers / 1500
    /// orders / ~6000 lineitems — the classic TPC-H ratios at 1/1000th of
    /// scale factor 1.
    pub fn scale(factor: f64) -> GenConfig {
        let f = |n: f64| ((n * factor).round() as usize).max(1);
        GenConfig {
            customers: f(150.0),
            orders: f(1500.0),
            lines_per_order: 4,
            parts: f(200.0),
            suppliers: f(10.0),
        }
    }

    /// A tiny instance for unit tests.
    pub fn tiny() -> GenConfig {
        GenConfig {
            customers: 10,
            orders: 30,
            lines_per_order: 3,
            parts: 15,
            suppliers: 3,
        }
    }
}

/// The generated database.
#[derive(Debug, Clone)]
pub struct TpchData {
    pub region: Relation,
    pub nation: Relation,
    pub supplier: Relation,
    pub customer: Relation,
    pub part: Relation,
    pub partsupp: Relation,
    pub orders: Relation,
    pub lineitem: Relation,
}

impl TpchData {
    /// Register every base table in a fresh catalog.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for rel in [
            &self.region,
            &self.nation,
            &self.supplier,
            &self.customer,
            &self.part,
            &self.partsupp,
            &self.orders,
            &self.lineitem,
        ] {
            c.register(rel.clone()).expect("table names are distinct");
        }
        c
    }

    pub fn total_rows(&self) -> usize {
        self.region.len()
            + self.nation.len()
            + self.supplier.len()
            + self.customer.len()
            + self.part.len()
            + self.partsupp.len()
            + self.orders.len()
            + self.lineitem.len()
    }
}

fn date(rng: &mut Rng) -> i64 {
    // Uniform over 1992-01-01 .. 1998-12-31, encoded YYYYMMDD.
    let year = rng.gen_range(1992..=1998);
    let month = rng.gen_range(1..=12);
    let day = rng.gen_range(1..=28);
    (year * 10000 + month * 100 + day) as i64
}

fn money(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo..hi) * 100.0).round() / 100.0
}

/// Generate a full database.
pub fn generate(config: &GenConfig, seed: u64) -> TpchData {
    let mut rng = Rng::seed_from_u64(seed);

    let mut region = Relation::new("region", schema::region());
    for (i, name) in schema::REGIONS.iter().enumerate() {
        region
            .insert(Tuple::new(vec![Value::Int(i as i64), Value::str(*name)]))
            .expect("region row");
    }

    let mut nation = Relation::new("nation", schema::nation());
    for (i, (name, r)) in schema::NATIONS.iter().enumerate() {
        nation
            .insert(Tuple::new(vec![
                Value::Int(i as i64),
                Value::str(*name),
                Value::Int(*r as i64),
            ]))
            .expect("nation row");
    }

    let mut supplier = Relation::new("supplier", schema::supplier());
    for i in 0..config.suppliers {
        supplier
            .insert(Tuple::new(vec![
                Value::Int(i as i64),
                Value::from(format!("Supplier#{i:05}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Float(money(&mut rng, -999.0, 9999.0)),
            ]))
            .expect("supplier row");
    }

    let mut customer = Relation::new("customer", schema::customer());
    for i in 0..config.customers {
        customer
            .insert(Tuple::new(vec![
                Value::Int(i as i64),
                Value::from(format!("Customer#{i:06}")),
                Value::Int(rng.gen_range(0..25)),
                Value::str(schema::MKT_SEGMENTS[rng.gen_range(0..5usize)]),
                Value::Float(money(&mut rng, -999.0, 9999.0)),
            ]))
            .expect("customer row");
    }

    let mut part = Relation::new("part", schema::part());
    for i in 0..config.parts {
        part.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::from(format!("Part#{i:06}")),
            Value::from(format!("Brand#{}", rng.gen_range(1..=5))),
            Value::str(schema::PART_TYPES[rng.gen_range(0..schema::PART_TYPES.len())]),
            Value::Int(rng.gen_range(1..=50)),
            Value::Float(money(&mut rng, 900.0, 2000.0)),
        ]))
        .expect("part row");
    }

    let mut partsupp = Relation::new("partsupp", schema::partsupp());
    for p in 0..config.parts {
        // Each part supplied by up to 2 distinct suppliers.
        let first = rng.gen_range(0..config.suppliers);
        let n_sup = 2.min(config.suppliers);
        for k in 0..n_sup {
            let s = (first + k) % config.suppliers;
            partsupp
                .insert(Tuple::new(vec![
                    Value::Int(p as i64),
                    Value::Int(s as i64),
                    Value::Int(rng.gen_range(1..=9999)),
                    Value::Float(money(&mut rng, 1.0, 1000.0)),
                ]))
                .expect("partsupp row");
        }
    }

    let mut orders = Relation::new("orders", schema::orders());
    let mut lineitem = Relation::new("lineitem", schema::lineitem());
    for o in 0..config.orders {
        let orderdate = date(&mut rng);
        let n_lines = rng.gen_range(1..=(2 * config.lines_per_order - 1).max(1));
        let mut total = 0.0f64;
        for ln in 0..n_lines {
            let quantity = rng.gen_range(1..=50i64);
            let p = rng.gen_range(0..config.parts);
            let extended = money(&mut rng, 900.0, 2000.0) * quantity as f64;
            let extended = (extended * 100.0).round() / 100.0;
            let discount = (rng.gen_range(0..=10) as f64) / 100.0;
            let tax = (rng.gen_range(0..=8) as f64) / 100.0;
            // Ship 1..=121 days after order; approximate in date encoding.
            let shipdate = orderdate + rng.gen_range(1..=121i64);
            total += extended * (1.0 - discount);
            lineitem
                .insert(Tuple::new(vec![
                    Value::Int(o as i64),
                    Value::Int(p as i64),
                    Value::Int(rng.gen_range(0..config.suppliers) as i64),
                    Value::Int(ln as i64 + 1),
                    Value::Int(quantity),
                    Value::Float(extended),
                    Value::Float(discount),
                    Value::Float(tax),
                    Value::str(schema::RETURN_FLAGS[rng.gen_range(0..3usize)]),
                    Value::str(schema::LINE_STATUSES[rng.gen_range(0..2usize)]),
                    Value::Int(shipdate),
                    Value::str(schema::SHIP_MODES[rng.gen_range(0..7usize)]),
                ]))
                .expect("lineitem row");
        }
        orders
            .insert(Tuple::new(vec![
                Value::Int(o as i64),
                Value::Int(rng.gen_range(0..config.customers) as i64),
                Value::str(["O", "F", "P"][rng.gen_range(0..3usize)]),
                Value::Float((total * 100.0).round() / 100.0),
                Value::Int(orderdate),
                Value::str(schema::ORDER_PRIORITIES[rng.gen_range(0..5usize)]),
            ]))
            .expect("orders row");
    }

    TpchData {
        region,
        nation,
        supplier,
        customer,
        part,
        partsupp,
        orders,
        lineitem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&GenConfig::tiny(), 42);
        let b = generate(&GenConfig::tiny(), 42);
        assert!(a.lineitem.multiset_eq(&b.lineitem));
        assert!(a.orders.multiset_eq(&b.orders));
        let c = generate(&GenConfig::tiny(), 43);
        assert!(!a.lineitem.multiset_eq(&c.lineitem));
    }

    #[test]
    fn sizes_follow_config() {
        let cfg = GenConfig::tiny();
        let d = generate(&cfg, 1);
        assert_eq!(d.customer.len(), cfg.customers);
        assert_eq!(d.orders.len(), cfg.orders);
        assert_eq!(d.part.len(), cfg.parts);
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert!(d.lineitem.len() >= cfg.orders);
    }

    #[test]
    fn foreign_keys_in_range() {
        let cfg = GenConfig::tiny();
        let d = generate(&cfg, 7);
        for t in d.orders.rows() {
            let Value::Int(ck) = t.get(1) else { panic!() };
            assert!((0..cfg.customers as i64).contains(ck));
        }
        for t in d.lineitem.rows() {
            let Value::Int(ok) = t.get(0) else { panic!() };
            assert!((0..cfg.orders as i64).contains(ok));
            let Value::Int(pk) = t.get(1) else { panic!() };
            assert!((0..cfg.parts as i64).contains(pk));
        }
        for t in d.customer.rows() {
            let Value::Int(nk) = t.get(2) else { panic!() };
            assert!((0..25).contains(nk));
        }
    }

    #[test]
    fn dates_are_valid_yyyymmdd() {
        let d = generate(&GenConfig::tiny(), 9);
        for t in d.orders.rows() {
            let Value::Int(date) = t.get(4) else { panic!() };
            let (y, m, dd) = (date / 10000, (date / 100) % 100, date % 100);
            assert!((1992..=1998).contains(&y));
            assert!((1..=12).contains(&m));
            assert!((1..=28).contains(&dd));
        }
    }

    #[test]
    fn catalog_contains_all_tables() {
        let d = generate(&GenConfig::tiny(), 1);
        let c = d.catalog();
        assert_eq!(c.len(), 8);
        assert!(c.contains("lineitem"));
        assert!(c.contains("region"));
        assert!(d.total_rows() > 100);
    }

    #[test]
    fn discounts_bounded() {
        let d = generate(&GenConfig::tiny(), 3);
        for t in d.lineitem.rows() {
            let Value::Float(disc) = t.get(6) else {
                panic!()
            };
            assert!((0.0..=0.10).contains(disc));
        }
    }
}
