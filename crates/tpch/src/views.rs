//! Predefined views for the user study.
//!
//! "We predefined views for queries involving many joins so that users
//! always query a single table" (Sec. VII-A.1). Views are materialized
//! joins with the revenue formula (`l_extendedprice × (1 − l_discount)`)
//! pre-computed, since core single-block SQL aggregates over columns.

use crate::gen::TpchData;
use ssa_relation::ops;
use ssa_relation::{Catalog, Expr, Relation, Result};

/// `lineitem` extended with `l_revenue`.
pub fn v_lineitem(data: &TpchData) -> Result<Relation> {
    let revenue = Expr::col("l_extendedprice").mul(Expr::lit(1.0).sub(Expr::col("l_discount")));
    let mut r = ops::extend(&data.lineitem, "l_revenue", &revenue)?;
    r.set_name("v_lineitem");
    Ok(r)
}

/// `lineitem ⋈ orders ⋈ customer`, with `l_revenue` — the single-table
/// stand-in for the Q3/Q10-family tasks.
pub fn v_custsales(data: &TpchData) -> Result<Relation> {
    let lo = ops::join(
        &data.lineitem,
        &data.orders,
        &Expr::col("l_orderkey").eq(Expr::col("o_orderkey")),
    )?;
    let loc = ops::join(
        &lo,
        &data.customer,
        &Expr::col("o_custkey").eq(Expr::col("c_custkey")),
    )?;
    let revenue = Expr::col("l_extendedprice").mul(Expr::lit(1.0).sub(Expr::col("l_discount")));
    let mut r = ops::extend(&loc, "l_revenue", &revenue)?;
    r.set_name("v_custsales");
    Ok(r)
}

/// `lineitem ⋈ supplier ⋈ nation ⋈ region`, with `l_revenue` — the
/// single-table stand-in for the Q5-family task (supplier-side geography).
pub fn v_sales(data: &TpchData) -> Result<Relation> {
    let ls = ops::join(
        &data.lineitem,
        &data.supplier,
        &Expr::col("l_suppkey").eq(Expr::col("s_suppkey")),
    )?;
    let lsn = ops::join(
        &ls,
        &data.nation,
        &Expr::col("s_nationkey").eq(Expr::col("n_nationkey")),
    )?;
    let lsnr = ops::join(
        &lsn,
        &data.region,
        &Expr::col("n_regionkey").eq(Expr::col("r_regionkey")),
    )?;
    let revenue = Expr::col("l_extendedprice").mul(Expr::lit(1.0).sub(Expr::col("l_discount")));
    let mut r = ops::extend(&lsnr, "l_revenue", &revenue)?;
    r.set_name("v_sales");
    Ok(r)
}

/// `partsupp` extended with `ps_value = ps_supplycost × ps_availqty`
/// (the Q11-family task).
pub fn v_partsupp(data: &TpchData) -> Result<Relation> {
    let value = Expr::col("ps_supplycost").mul(Expr::col("ps_availqty"));
    let mut r = ops::extend(&data.partsupp, "ps_value", &value)?;
    r.set_name("v_partsupp");
    Ok(r)
}

/// Register the base tables *and* all study views in one catalog — the
/// database exactly as a study participant saw it.
pub fn study_catalog(data: &TpchData) -> Result<Catalog> {
    let mut c = data.catalog();
    c.register(v_lineitem(data)?)?;
    c.register(v_custsales(data)?)?;
    c.register(v_sales(data)?)?;
    c.register(v_partsupp(data)?)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use ssa_relation::Value;

    fn data() -> TpchData {
        generate(&GenConfig::tiny(), 11)
    }

    #[test]
    fn v_lineitem_revenue_matches_formula() {
        let d = data();
        let v = v_lineitem(&d).unwrap();
        assert_eq!(v.len(), d.lineitem.len());
        for t in v.rows().iter().take(20) {
            let sch = v.schema();
            let ext = t
                .get(sch.index_of("l_extendedprice").unwrap())
                .as_f64()
                .unwrap();
            let disc = t.get(sch.index_of("l_discount").unwrap()).as_f64().unwrap();
            let rev = t.get(sch.index_of("l_revenue").unwrap()).as_f64().unwrap();
            assert!((rev - ext * (1.0 - disc)).abs() < 1e-9);
        }
    }

    #[test]
    fn v_custsales_joins_every_lineitem() {
        let d = data();
        let v = v_custsales(&d).unwrap();
        // every lineitem has exactly one order and one customer
        assert_eq!(v.len(), d.lineitem.len());
        assert!(v.schema().contains("c_name"));
        assert!(v.schema().contains("o_orderdate"));
        assert!(v.schema().contains("l_revenue"));
    }

    #[test]
    fn v_sales_carries_geography() {
        let d = data();
        let v = v_sales(&d).unwrap();
        assert_eq!(v.len(), d.lineitem.len());
        assert!(v.schema().contains("n_name"));
        assert!(v.schema().contains("r_name"));
        // region names are the five TPC-H regions
        let names = v.column_values("r_name").unwrap();
        assert!(names
            .iter()
            .all(|n| matches!(n, Value::Str(s) if crate::schema::REGIONS.contains(&s.as_str()))));
    }

    #[test]
    fn v_partsupp_value() {
        let d = data();
        let v = v_partsupp(&d).unwrap();
        assert_eq!(v.len(), d.partsupp.len());
        let sch = v.schema();
        for t in v.rows().iter().take(10) {
            let cost = t
                .get(sch.index_of("ps_supplycost").unwrap())
                .as_f64()
                .unwrap();
            let qty = t
                .get(sch.index_of("ps_availqty").unwrap())
                .as_f64()
                .unwrap();
            let val = t.get(sch.index_of("ps_value").unwrap()).as_f64().unwrap();
            assert!((val - cost * qty).abs() < 1e-6);
        }
    }

    #[test]
    fn study_catalog_has_tables_and_views() {
        let c = study_catalog(&data()).unwrap();
        assert_eq!(c.len(), 12);
        for name in [
            "lineitem",
            "v_lineitem",
            "v_custsales",
            "v_sales",
            "v_partsupp",
        ] {
            assert!(c.contains(name), "missing {name}");
        }
    }
}
