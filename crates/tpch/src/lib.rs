//! # ssa-tpch — the user study's database and tasks
//!
//! The paper evaluated SheetMusiq on the TPC-H demonstration dataset with
//! 10 of the 22 benchmark queries (those expressible without nesting,
//! `EXISTS` or `CASE`) and predefined views so subjects always queried a
//! single table. This crate reproduces that setup synthetically:
//!
//! * [`schema`] — the eight TPC-H tables (columns the tasks need);
//! * [`gen`] — a seeded deterministic generator;
//! * [`views`] — the predefined single-table views (with revenue
//!   pre-computed);
//! * [`queries`] — the ten study tasks with English statements, core SQL,
//!   and structural profiles that drive the simulated study.

pub mod feed;
pub mod gen;
pub mod queries;
pub mod schema;
pub mod views;

pub use feed::{FeedConfig, OrderFeed};
pub use gen::{generate, GenConfig, TpchData};
pub use queries::{study_setup, study_tasks, Complexity, QueryTask, TaskProfile};
pub use views::study_catalog;
