//! TPC-H-style schemas (the study's database).
//!
//! The paper ran its user study on the TPC-H demonstration dataset
//! (31 MB). We reproduce the eight-table schema with the columns the ten
//! study tasks need. Dates are stored as `YYYYMMDD` integers so range
//! predicates work with plain comparisons (documented substitution —
//! the expression language has no date type).

use ssa_relation::Schema;
use ssa_relation::ValueType::{Float, Int, Str};

pub fn region() -> Schema {
    Schema::of(&[("r_regionkey", Int), ("r_name", Str)])
}

pub fn nation() -> Schema {
    Schema::of(&[("n_nationkey", Int), ("n_name", Str), ("n_regionkey", Int)])
}

pub fn supplier() -> Schema {
    Schema::of(&[
        ("s_suppkey", Int),
        ("s_name", Str),
        ("s_nationkey", Int),
        ("s_acctbal", Float),
    ])
}

pub fn customer() -> Schema {
    Schema::of(&[
        ("c_custkey", Int),
        ("c_name", Str),
        ("c_nationkey", Int),
        ("c_mktsegment", Str),
        ("c_acctbal", Float),
    ])
}

pub fn part() -> Schema {
    Schema::of(&[
        ("p_partkey", Int),
        ("p_name", Str),
        ("p_brand", Str),
        ("p_type", Str),
        ("p_size", Int),
        ("p_retailprice", Float),
    ])
}

pub fn partsupp() -> Schema {
    Schema::of(&[
        ("ps_partkey", Int),
        ("ps_suppkey", Int),
        ("ps_availqty", Int),
        ("ps_supplycost", Float),
    ])
}

pub fn orders() -> Schema {
    Schema::of(&[
        ("o_orderkey", Int),
        ("o_custkey", Int),
        ("o_orderstatus", Str),
        ("o_totalprice", Float),
        ("o_orderdate", Int),
        ("o_orderpriority", Str),
    ])
}

pub fn lineitem() -> Schema {
    Schema::of(&[
        ("l_orderkey", Int),
        ("l_partkey", Int),
        ("l_suppkey", Int),
        ("l_linenumber", Int),
        ("l_quantity", Int),
        ("l_extendedprice", Float),
        ("l_discount", Float),
        ("l_tax", Float),
        ("l_returnflag", Str),
        ("l_linestatus", Str),
        ("l_shipdate", Int),
        ("l_shipmode", Str),
    ])
}

/// The five TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations with their region index.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const MKT_SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

pub const ORDER_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

pub const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];

pub const PART_TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "LARGE BRUSHED BRASS",
    "MEDIUM POLISHED COPPER",
    "PROMO BURNISHED NICKEL",
    "SMALL PLATED TIN",
    "STANDARD POLISHED BRASS",
];

pub const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
pub const LINE_STATUSES: [&str; 2] = ["O", "F"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemas_build() {
        for (s, cols) in [
            (region(), 2),
            (nation(), 3),
            (supplier(), 4),
            (customer(), 5),
            (part(), 6),
            (partsupp(), 4),
            (orders(), 6),
            (lineitem(), 12),
        ] {
            assert_eq!(s.len(), cols);
        }
    }

    #[test]
    fn column_names_globally_unique_across_tables() {
        // Joins must not produce prefixed clashes for the study views.
        let mut all: Vec<String> = Vec::new();
        for s in [
            region(),
            nation(),
            supplier(),
            customer(),
            part(),
            partsupp(),
            orders(),
            lineitem(),
        ] {
            all.extend(s.names().iter().map(|n| n.to_string()));
        }
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn nations_reference_valid_regions() {
        for (_, r) in NATIONS {
            assert!(r < REGIONS.len());
        }
        assert_eq!(NATIONS.len(), 25);
    }
}
