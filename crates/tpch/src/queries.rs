//! The ten user-study query tasks (Sec. VII-A.1).
//!
//! The paper kept 10 of TPC-H's 22 queries — the ones without nesting,
//! `EXISTS` or `CASE` — and pre-defined views so every task runs against a
//! single table. We reconstruct ten tasks in the same spirit: the
//! Q1/Q3/Q5/Q6/Q10/Q4/Q11 families that satisfy those restrictions plus
//! three deliberately simple tasks, because the paper reports that tasks
//! 5, 7 and 10 were "relatively simple" (speed was comparable on both
//! tools for exactly those three).

use crate::views::study_catalog;
use crate::{gen, GenConfig};
use ssa_sql::{parse_select, SelectStmt};
use std::fmt;

/// How demanding a task is — drives the study's interface models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Complexity {
    /// Filter/sort only; both tools handle it graphically.
    Simple,
    /// Aggregation or single-level grouping.
    Moderate,
    /// Multi-predicate + grouping + aggregation (+ HAVING): the visual
    /// builder forces SQL text for part of the task.
    Complex,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Complexity::Simple => "simple",
            Complexity::Moderate => "moderate",
            Complexity::Complex => "complex",
        })
    }
}

/// One study task.
#[derive(Debug, Clone)]
pub struct QueryTask {
    /// 1-based task number (the x-axis of Figs. 3–5).
    pub id: usize,
    pub name: &'static str,
    /// The English task statement given to subjects.
    pub description: &'static str,
    /// Core single-block SQL over the study catalog.
    pub sql: &'static str,
    pub complexity: Complexity,
}

/// Structural profile of a task: how many interface steps of each kind a
/// flawless user needs. Derived from the parsed statement, so the study's
/// cost models are driven by the task's structure, not hand-tuned per
/// task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskProfile {
    pub selections: usize,
    pub groupings: usize,
    pub aggregates: usize,
    pub having_predicates: usize,
    pub orderings: usize,
    pub projections: usize,
}

impl TaskProfile {
    pub fn from_stmt(stmt: &SelectStmt, table_width: usize) -> TaskProfile {
        let selections = stmt
            .where_clause
            .as_ref()
            .map(|w| w.conjuncts().len())
            .unwrap_or(0);
        let having_predicates = stmt
            .having
            .as_ref()
            .map(|h| h.conjuncts().len())
            .unwrap_or(0);
        TaskProfile {
            selections,
            groupings: stmt.group_by.len(),
            aggregates: stmt.aggregates.len(),
            having_predicates,
            orderings: stmt.order_by.len(),
            projections: table_width.saturating_sub(stmt.items.len()),
        }
    }

    /// Total direct-manipulation steps.
    pub fn total_steps(&self) -> usize {
        self.selections
            + self.groupings
            + self.aggregates
            + self.having_predicates
            + self.orderings
            + self.projections
    }

    /// Does the task exercise the concepts the visual builder lacks
    /// direct support for (grouping / aggregation / HAVING — Sec.
    /// VII-A.4)?
    pub fn needs_sql_fallback(&self) -> bool {
        self.groupings > 0 || self.aggregates > 0 || self.having_predicates > 0
    }
}

/// The ten tasks, in study order.
pub fn study_tasks() -> Vec<QueryTask> {
    vec![
        QueryTask {
            id: 1,
            name: "pricing-summary",
            description: "Report, per return flag and line status, the total and \
                          average quantity, the total extended price, and the number \
                          of line items shipped on or before 1998-09-02, sorted by \
                          flag then status.",
            sql: "SELECT l_returnflag, l_linestatus, SUM(l_quantity), \
                  SUM(l_extendedprice), AVG(l_quantity), COUNT(*) \
                  FROM lineitem WHERE l_shipdate <= 19980902 \
                  GROUP BY l_returnflag, l_linestatus \
                  ORDER BY l_returnflag, l_linestatus",
            complexity: Complexity::Complex,
        },
        QueryTask {
            id: 2,
            name: "shipping-priority",
            description: "For BUILDING-segment customers, find orders not yet shipped \
                          as of 1995-03-15 and report each order's total revenue, \
                          largest first.",
            sql: "SELECT l_orderkey, SUM(l_revenue) FROM v_custsales \
                  WHERE c_mktsegment = 'BUILDING' AND o_orderdate < 19950315 \
                  AND l_shipdate > 19950315 \
                  GROUP BY l_orderkey ORDER BY SUM(l_revenue) DESC",
            complexity: Complexity::Complex,
        },
        QueryTask {
            id: 3,
            name: "local-supplier-volume",
            description: "For suppliers in ASIA, report revenue per nation for \
                          line items shipped during 1994, largest first.",
            sql: "SELECT n_name, SUM(l_revenue) FROM v_sales \
                  WHERE r_name = 'ASIA' AND l_shipdate >= 19940101 \
                  AND l_shipdate < 19950101 \
                  GROUP BY n_name ORDER BY SUM(l_revenue) DESC",
            complexity: Complexity::Complex,
        },
        QueryTask {
            id: 4,
            name: "revenue-forecast",
            description: "Compute total revenue from line items shipped in 1994 \
                          with discount between 5% and 7% and quantity under 24.",
            sql: "SELECT SUM(l_revenue) FROM v_lineitem \
                  WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 \
                  AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24",
            complexity: Complexity::Moderate,
        },
        QueryTask {
            id: 5,
            name: "high-balance-customers",
            description: "List customers with an account balance above 5000, name \
                          and balance only, richest first.",
            sql: "SELECT c_name, c_acctbal FROM customer \
                  WHERE c_acctbal > 5000 ORDER BY c_acctbal DESC",
            complexity: Complexity::Simple,
        },
        QueryTask {
            id: 6,
            name: "returned-items",
            description: "For orders placed in 1993 Q4 whose items were returned, \
                          report revenue lost per customer, largest first.",
            sql: "SELECT c_name, SUM(l_revenue) FROM v_custsales \
                  WHERE l_returnflag = 'R' AND o_orderdate >= 19931001 \
                  AND o_orderdate < 19940101 \
                  GROUP BY c_name ORDER BY SUM(l_revenue) DESC",
            complexity: Complexity::Complex,
        },
        QueryTask {
            id: 7,
            name: "big-ticket-orders",
            description: "List orders worth more than 250000, with key, price and \
                          date, most expensive first.",
            sql: "SELECT o_orderkey, o_totalprice, o_orderdate FROM orders \
                  WHERE o_totalprice > 250000 ORDER BY o_totalprice DESC",
            complexity: Complexity::Simple,
        },
        QueryTask {
            id: 8,
            name: "order-priority-count",
            description: "Count orders placed in 1993 Q3 per order priority, in \
                          priority order.",
            sql: "SELECT o_orderpriority, COUNT(*) FROM orders \
                  WHERE o_orderdate >= 19930701 AND o_orderdate < 19931001 \
                  GROUP BY o_orderpriority ORDER BY o_orderpriority",
            complexity: Complexity::Moderate,
        },
        QueryTask {
            id: 9,
            name: "important-stock",
            description: "Find parts whose total stock value (supply cost × \
                          available quantity, summed over suppliers) exceeds \
                          500000, most valuable first.",
            sql: "SELECT ps_partkey, SUM(ps_value) FROM v_partsupp \
                  GROUP BY ps_partkey HAVING SUM(ps_value) > 500000 \
                  ORDER BY SUM(ps_value) DESC",
            complexity: Complexity::Complex,
        },
        QueryTask {
            id: 10,
            name: "cheap-tin-parts",
            description: "List name and retail price of SMALL PLATED TIN parts \
                          priced under 1200, cheapest first.",
            sql: "SELECT p_name, p_retailprice FROM part \
                  WHERE p_type = 'SMALL PLATED TIN' AND p_retailprice < 1200 \
                  ORDER BY p_retailprice",
            complexity: Complexity::Simple,
        },
    ]
}

impl QueryTask {
    /// Parse this task's SQL.
    pub fn stmt(&self) -> SelectStmt {
        parse_select(self.sql).expect("study task SQL is well-formed core SQL")
    }

    /// Structural profile against the study catalog.
    pub fn profile(&self, catalog: &ssa_relation::Catalog) -> TaskProfile {
        let stmt = self.stmt();
        let width = catalog
            .get(&stmt.from[0])
            .map(|r| r.schema().len())
            .unwrap_or(0);
        TaskProfile::from_stmt(&stmt, width)
    }
}

/// Convenience: generated data + study catalog + tasks, in one call.
pub fn study_setup(scale: f64, seed: u64) -> (ssa_relation::Catalog, Vec<QueryTask>) {
    let data = gen::generate(&GenConfig::scale(scale), seed);
    let catalog = study_catalog(&data).expect("study views build");
    (catalog, study_tasks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use ssa_sql::{eval_select, translate};

    #[test]
    fn all_tasks_parse_and_validate() {
        for t in study_tasks() {
            let stmt = t.stmt();
            stmt.validate()
                .unwrap_or_else(|e| panic!("task {}: {e}", t.id));
        }
    }

    #[test]
    fn task_ids_are_one_to_ten() {
        let ids: Vec<usize> = study_tasks().iter().map(|t| t.id).collect();
        assert_eq!(ids, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn simple_tasks_are_5_7_10() {
        // The paper found tools comparable exactly on the simple tasks.
        for t in study_tasks() {
            let simple = matches!(t.complexity, Complexity::Simple);
            assert_eq!(simple, [5, 7, 10].contains(&t.id), "task {}", t.id);
        }
    }

    #[test]
    fn tasks_execute_on_generated_data() {
        let data = generate(&GenConfig::tiny(), 5);
        let catalog = study_catalog(&data).unwrap();
        for t in study_tasks() {
            let stmt = t.stmt();
            let r = eval_select(&stmt, &catalog)
                .unwrap_or_else(|e| panic!("task {} failed: {e}", t.id));
            assert_eq!(r.schema().len(), stmt.items.len(), "task {}", t.id);
        }
    }

    #[test]
    fn tasks_theorem1_equivalent_on_generated_data() {
        let data = generate(&GenConfig::tiny(), 6);
        let catalog = study_catalog(&data).unwrap();
        for t in study_tasks() {
            let stmt = t.stmt();
            let reference = eval_select(&stmt, &catalog).unwrap();
            let translated = translate(&stmt, &catalog)
                .unwrap_or_else(|e| panic!("task {} translation failed: {e}", t.id));
            let sheet_result = translated.result().unwrap();
            assert!(
                ssa_sql::equivalent(&stmt, &reference, &sheet_result),
                "task {} not equivalent",
                t.id
            );
        }
    }

    #[test]
    fn profiles_reflect_structure() {
        let data = generate(&GenConfig::tiny(), 7);
        let catalog = study_catalog(&data).unwrap();
        let tasks = study_tasks();
        let p1 = tasks[0].profile(&catalog); // pricing summary
        assert_eq!(p1.groupings, 2);
        assert_eq!(p1.aggregates, 4);
        assert_eq!(p1.selections, 1);
        assert!(p1.needs_sql_fallback());
        let p5 = tasks[4].profile(&catalog); // high-balance customers
        assert_eq!(p5.groupings, 0);
        assert!(!p5.needs_sql_fallback());
        assert!(p5.total_steps() < p1.total_steps());
        let p9 = tasks[8].profile(&catalog); // important stock
        assert_eq!(p9.having_predicates, 1);
    }

    #[test]
    fn study_setup_end_to_end() {
        let (catalog, tasks) = study_setup(0.05, 1);
        assert_eq!(tasks.len(), 10);
        assert!(catalog.contains("v_sales"));
    }
}
