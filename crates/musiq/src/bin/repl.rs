//! Interactive SheetMusiq REPL over the paper's used-car example database
//! (plus the dealers table). Type `help` for commands, `quit` to exit.

use sheetmusiq::{ScriptHost, Session};
use spreadsheet_algebra::fixtures::{dealers, used_cars};
use ssa_relation::Catalog;
use std::io::{self, BufRead, Write};

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(used_cars()).expect("fixture registers");
    catalog.register(dealers()).expect("fixture registers");
    let mut host = ScriptHost::new(Session::new(catalog));

    println!("SheetMusiq — spreadsheet algebra REPL (ICDE 2009 reproduction)");
    println!("Tables: cars, dealers. Try: load cars");
    println!("{}", sheetmusiq::HELP);

    let stdin = io::stdin();
    let mut line = String::new();
    loop {
        print!("musiq> ");
        io::stdout().flush().expect("stdout flush");
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let cmd = line.trim();
        if cmd.eq_ignore_ascii_case("quit") || cmd.eq_ignore_ascii_case("exit") {
            break;
        }
        match host.execute(cmd) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
