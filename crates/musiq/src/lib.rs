//! # sheetmusiq — the interface layer of the reproduction
//!
//! The paper's third contribution is SheetMusiq, "a spreadsheet interface
//! to an RDBMS that implements the spreadsheet algebra" (Sec. VI). This
//! crate reproduces the interface as a *model*: sessions with one current
//! sheet and a store of saved sheets ([`session`]), contextual menus that
//! offer only type- and state-appropriate operations ([`menu`]), the
//! direct-manipulation gestures — header-click sorting, projection
//! checkboxes, filter-by-cell ([`actions`]) — and a script language that
//! transcribes whole sessions ([`script`]), used by the REPL binary, the
//! examples and the simulated user study.

pub mod actions;
pub mod dialogs;
pub mod menu;
pub mod script;
pub mod session;

pub use actions::{apply_action, HeaderToggles, UserAction};
pub use dialogs::{AggregationDialog, CompareWith, JoinDialog, SelectionDialog};
pub use menu::{context_menu, ClickTarget, MenuEntry};
pub use script::{is_write_command, ScriptHost, HELP};
pub use session::Session;
