//! The SheetMusiq script language: a textual stand-in for the prototype's
//! mouse gestures, used by the REPL, the examples and the integration
//! tests. Every command maps 1:1 onto an interface action or algebra
//! operator, so a script is a faithful transcript of a direct-manipulation
//! session.

use crate::actions::{apply_action, HeaderToggles, UserAction};
use crate::menu::{context_menu, ClickTarget};
use crate::session::Session;
use spreadsheet_algebra::render::{render_table, render_tree};
use spreadsheet_algebra::{Direction, Result, SheetError};
use ssa_relation::agg::parse_agg_func;
use ssa_relation::expr_parse::parse_expr;
use ssa_relation::{Schema, Tuple, Value};

/// A scriptable session: the session plus the header-arrow state.
#[derive(Debug)]
pub struct ScriptHost {
    pub session: Session,
    pub toggles: HeaderToggles,
}

impl ScriptHost {
    pub fn new(session: Session) -> ScriptHost {
        ScriptHost {
            session,
            toggles: HeaderToggles::new(),
        }
    }

    /// Execute one command line; returns the text to print.
    pub fn execute(&mut self, line: &str) -> Result<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd.to_ascii_lowercase().as_str() {
            "help" => Ok(HELP.to_string()),
            "sql" => {
                // Run a core single-block SQL statement through the
                // Theorem-1 translation: the resulting spreadsheet (with
                // its grouping, aggregates and retained predicates all in
                // modifiable query state) becomes the current sheet.
                let stmt = ssa_sql::parse_select(rest).map_err(SheetError::from)?;
                let translated = ssa_sql::translate(&stmt, self.session.catalog())?;
                self.session
                    .adopt(spreadsheet_algebra::Engine::from_sheet(translated.sheet));
                self.after_change("SQL translated to spreadsheet operations")
            }
            "tables" => Ok(self.session.catalog().names().join("\n")),
            "load" => {
                self.session.load(rest)?;
                Ok(format!("loaded {rest}"))
            }
            "show" => {
                let view = self.session.engine()?.view()?;
                Ok(render_table(view))
            }
            "tree" => {
                let view = self.session.engine()?.view()?;
                Ok(render_tree(view))
            }
            "cols" => Ok(self.session.engine()?.sheet().visible().join(", ")),
            "select" => {
                let pred = parse_expr(rest)?;
                let id = self.session.engine()?.select(pred)?;
                self.after_change(&format!("selection #{id} applied"))
            }
            "group" | "regroup" => {
                let (col, dir) = column_and_direction(rest)?;
                let engine = self.session.engine()?;
                if cmd.eq_ignore_ascii_case("group") {
                    engine.group_add(&[&col], dir)?;
                } else {
                    engine.regroup(&[&col], dir)?;
                }
                self.after_change("grouped")
            }
            "ungroup" => {
                self.session.engine()?.ungroup()?;
                self.after_change("grouping removed")
            }
            "order" => {
                let mut parts: Vec<&str> = rest.split_whitespace().collect();
                let level = parts
                    .last()
                    .and_then(|p| p.parse::<usize>().ok())
                    .inspect(|_| {
                        parts.pop();
                    });
                let (col, dir) = column_and_direction(&parts.join(" "))?;
                let engine = self.session.engine()?;
                let level = level.unwrap_or_else(|| engine.sheet().state().spec.level_count());
                engine.order(&col, dir, level)?;
                self.after_change("ordered")
            }
            "sortclick" => {
                // The literal header-click gesture (toggles asc/desc).
                apply_action(
                    &mut self.session,
                    &mut self.toggles,
                    &UserAction::ClickHeader {
                        column: rest.to_string(),
                        level: None,
                    },
                )?;
                self.after_change("sorted")
            }
            "agg" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() < 2 {
                    return Err(bad_args("agg <func> <column> [level]"));
                }
                let func = parse_agg_func(parts[0])?;
                let engine = self.session.engine()?;
                let level = parts
                    .get(2)
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_else(|| engine.sheet().state().spec.level_count());
                let name = engine.aggregate(func, parts[1], level)?;
                self.after_change(&format!("created column {name}"))
            }
            "formula" => {
                let (name, expr_text) = match rest.split_once('=') {
                    Some((n, e)) if !n.trim().contains(' ') && !n.trim().is_empty() => {
                        (Some(n.trim()), e.trim())
                    }
                    _ => (None, rest),
                };
                let expr = parse_expr(expr_text)?;
                let name = self.session.engine()?.formula(name, expr)?;
                self.after_change(&format!("created column {name}"))
            }
            "project" => {
                self.session.engine()?.project_out(rest)?;
                self.after_change(&format!("projected out {rest}"))
            }
            "dropcol" => {
                // Cascaded removal of a computed column and everything
                // that depends on it (Sec. V-B).
                let plan = self
                    .session
                    .engine()?
                    .sheet_mut()
                    .remove_with_cascade(rest)?;
                self.after_change(&format!("{plan}"))
            }
            "plan" => {
                let plan = self.session.engine_ref()?.sheet().removal_plan(rest)?;
                Ok(plan.to_string())
            }
            "explain" => self.session.explain(),
            "feed" => {
                // One base row as comma-separated literals, e.g.
                // `feed 999, 'Jetta', 15500, 2005, 60000, 'Good'`.
                let vals = rest
                    .split(',')
                    .map(|v| parse_constant(v.trim()))
                    .collect::<Result<Vec<Value>>>()?;
                let action = UserAction::FeedRows {
                    rows: vec![Tuple::new(vals)],
                };
                apply_action(&mut self.session, &mut self.toggles, &action)?;
                self.after_change("row appended")
            }
            "delrows" => {
                let ids = rest
                    .split_whitespace()
                    .map(|t| t.parse().map_err(|_| bad_args("delrows <base-row-id>...")))
                    .collect::<Result<Vec<u32>>>()?;
                let n = ids.len();
                let action = UserAction::DeleteRows { ids };
                apply_action(&mut self.session, &mut self.toggles, &action)?;
                self.after_change(&format!("deleted {n} base row(s)"))
            }
            "setcell" => {
                let parts: Vec<&str> = rest.splitn(3, char::is_whitespace).collect();
                let [row, column, value] = parts.as_slice() else {
                    return Err(bad_args("setcell <base-row-id> <column> <literal>"));
                };
                let action = UserAction::EditCell {
                    row: row.parse().map_err(|_| bad_args("numeric base row id"))?,
                    column: column.to_string(),
                    value: parse_constant(value)?,
                };
                apply_action(&mut self.session, &mut self.toggles, &action)?;
                self.after_change(&format!("updated {column} of base row {row}"))
            }
            "reinstate" => {
                self.session.engine()?.reinstate(rest)?;
                self.after_change(&format!("reinstated {rest}"))
            }
            "dedup" => {
                self.session.engine()?.dedup()?;
                self.after_change("duplicates removed")
            }
            "rename" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 2 {
                    return Err(bad_args("rename <old> <new>"));
                }
                self.session.engine()?.rename(parts[0], parts[1])?;
                self.after_change("renamed")
            }
            "save" => {
                self.session.save(rest)?;
                Ok(format!("saved as {rest}"))
            }
            "open" => {
                self.session.open(rest)?;
                Ok(format!("opened {rest}"))
            }
            "close" => {
                self.session.close();
                Ok("closed".to_string())
            }
            "stored" => Ok(self.session.stored_names().join("\n")),
            "product" => {
                self.session.product(rest)?;
                self.after_change("product applied")
            }
            "union" => {
                self.session.union(rest)?;
                self.after_change("union applied")
            }
            "minus" => {
                self.session.difference(rest)?;
                self.after_change("difference applied")
            }
            "join" => {
                let (name, cond) = rest
                    .split_once(" on ")
                    .ok_or_else(|| bad_args("join <stored> on <condition>"))?;
                let cond = parse_expr(cond.trim())?;
                self.session.join(name.trim(), cond)?;
                self.after_change("join applied")
            }
            "history" => Ok(self.session.engine()?.history().join("\n")),
            "state" => Ok(self.session.engine()?.sheet().state().describe().join("\n")),
            "undo" => {
                let steps = rest.parse().unwrap_or(1);
                let ops = self.session.engine()?.undo_steps(steps)?;
                Ok(ops
                    .iter()
                    .map(|o| format!("undid: {o}"))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "redo" => {
                let steps = rest.parse().unwrap_or(1);
                let ops = self.session.engine()?.redo_steps(steps)?;
                Ok(ops
                    .iter()
                    .map(|o| format!("redid: {o}"))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "modify" => {
                let (id, expr_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| bad_args("modify <selection-id> <new predicate>"))?;
                let id: u64 = id.parse().map_err(|_| bad_args("numeric selection id"))?;
                let pred = parse_expr(expr_text)?;
                self.session.engine()?.replace_selection(id, pred)?;
                self.after_change("selection modified")
            }
            "unselect" => {
                let id: u64 = rest.parse().map_err(|_| bad_args("numeric selection id"))?;
                self.session.engine()?.remove_selection(id)?;
                self.after_change("selection removed")
            }
            "filters" => {
                // list predicates on a column (the modification dialog)
                let engine = self.session.engine()?;
                let entries = engine.sheet().state().selections_on(rest);
                Ok(entries
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "menu" => {
                let stored = self.session.stored_names().len();
                let engine = self.session.engine_ref()?;
                let entries = context_menu(
                    engine.sheet(),
                    &ClickTarget::Cell {
                        column: rest.to_string(),
                    },
                    stored,
                )?;
                Ok(entries
                    .iter()
                    .map(|e| format!("{e:?}"))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            other => Err(SheetError::Persist {
                message: format!("unknown command `{other}` (try `help`)"),
            }),
        }
    }

    /// Run a multi-line script, stopping at the first error.
    pub fn run_script(&mut self, script: &str) -> Result<Vec<String>> {
        script.lines().map(|l| self.execute(l)).collect()
    }

    fn after_change(&mut self, message: &str) -> Result<String> {
        // Direct manipulation: the updated sheet is always presented
        // immediately; here we confirm with the new row count.
        let n = self.session.engine()?.view()?.len();
        Ok(format!("{message} ({n} rows)"))
    }
}

/// Whether a script command mutates the *base data* (`feed`, `delrows`,
/// `setcell`, `rename`) or replaces the session's sheet outright (`load`,
/// `open`, `sql`). The server's read sessions share an immutable base
/// snapshot pinned to one hosted sheet, so both kinds must be rejected
/// there: base edits go through the sheet host's serialized writer, and
/// re-pointing the session would silently un-pin it from the snapshot.
pub fn is_write_command(line: &str) -> bool {
    let line = line.trim();
    let cmd = line
        .split_once(char::is_whitespace)
        .map_or(line, |(c, _)| c);
    matches!(
        cmd.to_ascii_lowercase().as_str(),
        "feed" | "delrows" | "setcell" | "rename" | "load" | "open" | "sql"
    )
}

fn column_and_direction(rest: &str) -> Result<(String, Direction)> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    match parts.as_slice() {
        [col] => Ok((col.to_string(), Direction::Asc)),
        [col, d] if d.eq_ignore_ascii_case("asc") => Ok((col.to_string(), Direction::Asc)),
        [col, d] if d.eq_ignore_ascii_case("desc") => Ok((col.to_string(), Direction::Desc)),
        _ => Err(bad_args("<column> [asc|desc]")),
    }
}

fn bad_args(usage: &str) -> SheetError {
    SheetError::Persist {
        message: format!("usage: {usage}"),
    }
}

/// Parse one constant value for the base-edit commands: any literal
/// expression (`15500`, `'Jetta'`, `-3.5`, `null`) — column references
/// fail against the empty schema.
fn parse_constant(text: &str) -> Result<Value> {
    let v = parse_expr(text)?.eval(&Schema::empty(), &Tuple::new(Vec::new()))?;
    Ok(v)
}

/// Help text for the REPL.
pub const HELP: &str = "\
SheetMusiq commands:
  tables | load <rel> | show | tree | cols | menu <col>
  select <pred> | filters <col> | modify <id> <pred> | unselect <id>
  group <col> [asc|desc] | regroup <col> [dir] | ungroup
  order <col> [dir] [level] | sortclick <col>
  agg <func> <col> [level] | formula [name =] <expr>
  project <col> | reinstate <col> | dedup | rename <old> <new>
  plan <computed-col> | dropcol <computed-col>   (cascaded removal)
  explain   (render the evaluation plan as a text tree)
  feed <v1, v2, ...> | delrows <base-row-id>... | setcell <row> <col> <value>
  save <name> | open <name> | close | stored
  product <name> | union <name> | minus <name> | join <name> on <cond>
  sql <core single-block SQL>   (Theorem-1 translation into the session)
  history | state | undo [n] | redo [n] | help";

#[cfg(test)]
mod tests {
    use super::*;
    use spreadsheet_algebra::fixtures::{dealers, used_cars};
    use ssa_relation::Catalog;

    fn host() -> ScriptHost {
        let mut c = Catalog::new();
        c.register(used_cars()).unwrap();
        c.register(dealers()).unwrap();
        ScriptHost::new(Session::new(c))
    }

    #[test]
    fn base_edit_commands_drive_the_feed_actions() {
        let mut h = host();
        h.execute("load cars").unwrap();
        h.execute("group Model asc").unwrap();
        h.execute("agg avg Price 2").unwrap();
        let out = h
            .execute("feed 999, 'Jetta', 15500, 2005, 60000, 'Good'")
            .unwrap();
        assert_eq!(out, "row appended (10 rows)");
        let out = h.execute("setcell 9 Price 15750").unwrap();
        assert_eq!(out, "updated Price of base row 9 (10 rows)");
        // The patched view is live: explain names the base-data delta.
        let explained = h.execute("explain").unwrap();
        assert!(explained.contains("cells updated (1)"), "{explained}");
        let out = h.execute("delrows 9").unwrap();
        assert_eq!(out, "deleted 1 base row(s) (9 rows)");
        // Bad literals and malformed ids report usage errors, not panics.
        assert!(h.execute("feed 1, Ghost").is_err());
        assert!(h.execute("delrows nine").is_err());
        assert!(h.execute("setcell 0 Price").is_err());
    }

    #[test]
    fn explain_renders_current_plan() {
        let mut h = host();
        h.run_script(
            "load cars\n\
             group Model desc\n\
             select Year >= 2005\n\
             agg avg Price 1\n\
             select Price <= Avg_Price",
        )
        .unwrap();
        let out = h.execute("explain").unwrap();
        assert!(out.contains("Scan cars"), "{out}");
        assert!(out.contains("Filter Year >= 2005"), "{out}");
        assert!(out.contains("Compute [Avg_Price]"), "{out}");
        assert!(out.contains("Group [Model]"), "{out}");
        // The Avg_Price selection ranks above the aggregate, so its
        // filter renders above the compute node.
        let f = out.find("Filter Price <= Avg_Price").unwrap();
        let c = out.find("Compute [Avg_Price]").unwrap();
        assert!(f < c, "selection over the aggregate stays above it:\n{out}");
    }

    #[test]
    fn sam_scenario_as_a_script() {
        // The running example of Sec. VI-A, as a transcript.
        let mut h = host();
        let out = h
            .run_script(
                "load cars\n\
                 group Model desc\n\
                 group Year\n\
                 select Condition = 'Good' OR Condition = 'Excellent'\n\
                 select Model = 'Jetta' OR Model = 'Civic'\n\
                 agg avg Price 3\n\
                 select Price <= Avg_Price\n\
                 show",
            )
            .unwrap();
        assert!(out[5].contains("created column Avg_Price"));
        let table = &out[7];
        assert!(table.contains("Avg_Price"));
    }

    #[test]
    fn tables_iv_v_modification_flow() {
        let mut h = host();
        h.execute("load cars").unwrap();
        let msg = h.execute("select Year = 2005").unwrap();
        assert!(msg.contains("selection #0"));
        h.execute("select Model = 'Jetta'").unwrap();
        h.execute("select Mileage < 80000").unwrap();
        h.execute("group Condition").unwrap();
        h.execute("order Price asc 2").unwrap();
        assert!(h.execute("show").unwrap().contains("872"));
        // the modification dialog lists the Year predicate
        let filters = h.execute("filters Year").unwrap();
        assert!(filters.contains("Year = 2005"));
        let out = h.execute("modify 0 Year = 2006").unwrap();
        assert!(out.contains("3 rows"));
        assert!(h.execute("show").unwrap().contains("723"));
    }

    #[test]
    fn binary_ops_via_script() {
        let mut h = host();
        h.run_script("load cars\nselect Model = 'Jetta'\nsave jettas\nload cars")
            .unwrap();
        let out = h.execute("minus jettas").unwrap();
        assert!(out.contains("3 rows"));
        let stored = h.execute("stored").unwrap();
        assert_eq!(stored, "jettas");
    }

    #[test]
    fn join_command() {
        let mut h = host();
        h.run_script("load dealers\nsave d\nload cars").unwrap();
        let out = h.execute("join d on Model = \"dealers.Model\"").unwrap();
        assert!(out.contains("12 rows"));
    }

    #[test]
    fn undo_redo_and_history() {
        let mut h = host();
        h.run_script("load cars\nselect Year = 2005\ndedup")
            .unwrap();
        let hist = h.execute("history").unwrap();
        assert!(hist.contains("1. Select"));
        assert!(hist.contains("2. Remove duplicates"));
        let undone = h.execute("undo 2").unwrap();
        assert!(undone.contains("undid"));
        let redone = h.execute("redo").unwrap();
        assert!(redone.contains("redid"));
    }

    #[test]
    fn sortclick_toggles() {
        let mut h = host();
        h.execute("load cars").unwrap();
        h.execute("sortclick Price").unwrap();
        let t1 = h.execute("show").unwrap();
        let first_asc = t1.lines().nth(2).unwrap().to_string();
        assert!(first_asc.contains("13500"));
        h.execute("sortclick Price").unwrap();
        let t2 = h.execute("show").unwrap();
        assert!(t2.lines().nth(2).unwrap().contains("18000"));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut h = host();
        assert!(h.execute("show").is_err()); // no sheet yet
        h.execute("load cars").unwrap();
        assert!(h.execute("select Ghost = 1").is_err());
        assert!(h.execute("agg avg Model").is_err());
        assert!(h.execute("frobnicate").is_err());
        assert!(h.execute("join nothing").is_err());
        assert!(h.execute("rename onlyone").is_err());
        // the sheet survives all failed commands
        assert!(h.execute("show").unwrap().contains("Jetta"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut h = host();
        let out = h.run_script("# a comment\n\nload cars").unwrap();
        assert_eq!(out[0], "");
        assert_eq!(out[1], "");
        assert!(out[2].contains("loaded"));
    }

    #[test]
    fn formula_with_and_without_name() {
        let mut h = host();
        h.execute("load cars").unwrap();
        let o1 = h.execute("formula PriceK = Price / 1000").unwrap();
        assert!(o1.contains("PriceK"));
        let o2 = h.execute("formula Price * 2").unwrap();
        assert!(o2.contains("created column F1"));
    }

    #[test]
    fn dropcol_cascades_through_script() {
        let mut h = host();
        h.run_script("load cars\ngroup Model\nagg avg Price 2\nselect Price < Avg_Price")
            .unwrap();
        let plan = h.execute("plan Avg_Price").unwrap();
        assert!(plan.contains("selection"));
        assert!(plan.contains("column Avg_Price"));
        let out = h.execute("dropcol Avg_Price").unwrap();
        assert!(out.contains("9 rows"));
        // plain remove of a depended-on column still refuses
        h.run_script("load cars\nagg avg Price 1\nselect Price < Avg_Price")
            .unwrap();
        assert!(h.execute("project Avg_Price").is_err());
    }

    #[test]
    fn sql_command_translates_into_modifiable_sheet() {
        let mut h = host();
        let out = h
            .execute("sql SELECT Model, AVG(Price) FROM cars GROUP BY Model ORDER BY Model")
            .unwrap();
        assert!(out.contains("9 rows")); // all tuples, aggregates repeated
                                         // the translation left real, modifiable query state behind:
        let state = h.execute("state").unwrap();
        assert!(state.contains("Avg_Price"), "{state}");
        // the grouping arrived too, so further direct manipulation works
        let out = h.execute("select Avg_Price > 15000").unwrap();
        assert!(out.contains("6 rows")); // the Jettas (avg 16333)
        assert!(h.execute("sql SELEC nope").is_err());
    }

    #[test]
    fn menu_command_lists_contextual_entries() {
        let mut h = host();
        h.execute("load cars").unwrap();
        let menu = h.execute("menu Price").unwrap();
        assert!(menu.contains("FilterByThisValue"));
        assert!(menu.contains("Aggregate"));
    }
}
