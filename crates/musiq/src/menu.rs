//! The contextual menu model (Sec. VI).
//!
//! "Most query operations are accessible with a contextual menu, which
//! pops up when the user right-clicks a cell or column-header. It is
//! contextual because it shows only options that are available for the
//! current cell value type under current grouping and ordering."
//!
//! This module computes, for a click target on the current sheet, exactly
//! which menu entries the prototype would show. The simulated user study
//! drives this model, and the REPL prints it (`menu <col>`), so the
//! interface behaviour of the paper is testable without a GUI toolkit.

use spreadsheet_algebra::{Result, Spreadsheet};
use ssa_relation::{AggFunc, ValueType};

/// Where the user right-clicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClickTarget {
    /// A data cell in the named column.
    Cell { column: String },
    /// A column header.
    Header { column: String },
    /// The sheet background (no column context).
    Background,
}

/// A menu entry the interface would offer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MenuEntry {
    /// "Filter rows equal to this cell's value" — one extra click
    /// (Sec. VI-A Selection).
    FilterByThisValue,
    /// Open the selection dialog for this column; lists the predicates
    /// already applied to it (query modification, Sec. V-B).
    SelectionDialog { existing_predicates: usize },
    /// Sort by this column (header click). `will_prompt_for_level` when
    /// grouping exists and the user must pick the level.
    Sort { will_prompt_for_level: bool },
    /// Add this column to the grouping (or regroup).
    GroupBy { adds_level: usize },
    /// Aggregate this column; only functions valid for its type are
    /// listed, and the level choice appears only under grouping.
    Aggregate {
        functions: Vec<AggFunc>,
        level_choices: usize,
    },
    /// Formula-computation dialog.
    Formula,
    /// Remove all duplicates.
    DuplicateElimination,
    /// Project this column out (the checkbox).
    ProjectOut,
    /// Reinstate previously projected columns (drop-down).
    Reinstate { hidden_columns: Vec<String> },
    /// Binary operators — only offered when stored sheets exist.
    BinaryOps { stored_sheets: usize },
    /// Save the current sheet.
    Save,
    /// Rename this column.
    Rename,
}

/// Compute the contextual menu for a click.
pub fn context_menu(
    sheet: &Spreadsheet,
    target: &ClickTarget,
    stored_sheets: usize,
) -> Result<Vec<MenuEntry>> {
    let mut entries = Vec::new();
    let levels = sheet.state().spec.level_count();
    let hidden: Vec<String> = sheet.state().projected_out.iter().cloned().collect();

    match target {
        ClickTarget::Cell { column } | ClickTarget::Header { column } => {
            // Column-specific entries need the column's type.
            let derived = sheet.evaluate_now()?;
            let ty = derived.data.schema().column(column)?.ty;

            if matches!(target, ClickTarget::Cell { .. }) {
                entries.push(MenuEntry::FilterByThisValue);
            }
            entries.push(MenuEntry::SelectionDialog {
                existing_predicates: sheet.state().selections_on(column).len(),
            });
            entries.push(MenuEntry::Sort {
                will_prompt_for_level: levels > 1,
            });
            // Grouping by a column already in the basis is not offered.
            if !sheet
                .state()
                .spec
                .all_grouping_attributes()
                .contains(column)
            {
                entries.push(MenuEntry::GroupBy {
                    adds_level: levels + 1,
                });
            }
            // Aggregation functions depend on the value type (contextual!).
            let functions: Vec<AggFunc> = AggFunc::ALL
                .into_iter()
                .filter(|f| !f.requires_numeric() || ty.is_numeric() || ty == ValueType::Null)
                .collect();
            entries.push(MenuEntry::Aggregate {
                functions,
                level_choices: levels,
            });
            entries.push(MenuEntry::ProjectOut);
            entries.push(MenuEntry::Rename);
        }
        ClickTarget::Background => {}
    }

    entries.push(MenuEntry::Formula);
    entries.push(MenuEntry::DuplicateElimination);
    if !hidden.is_empty() {
        entries.push(MenuEntry::Reinstate {
            hidden_columns: hidden,
        });
    }
    if stored_sheets > 0 {
        entries.push(MenuEntry::BinaryOps { stored_sheets });
    }
    entries.push(MenuEntry::Save);
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spreadsheet_algebra::fixtures::used_cars;
    use spreadsheet_algebra::Direction;
    use ssa_relation::Expr;

    fn sheet() -> Spreadsheet {
        Spreadsheet::over(used_cars())
    }

    fn has_filter(entries: &[MenuEntry]) -> bool {
        entries
            .iter()
            .any(|e| matches!(e, MenuEntry::FilterByThisValue))
    }

    #[test]
    fn cell_click_offers_filter_header_does_not() {
        let s = sheet();
        let cell = context_menu(
            &s,
            &ClickTarget::Cell {
                column: "Model".into(),
            },
            0,
        )
        .unwrap();
        let header = context_menu(
            &s,
            &ClickTarget::Header {
                column: "Model".into(),
            },
            0,
        )
        .unwrap();
        assert!(has_filter(&cell));
        assert!(!has_filter(&header));
    }

    #[test]
    fn numeric_column_offers_all_aggregates_string_only_safe_ones() {
        let s = sheet();
        let price = context_menu(
            &s,
            &ClickTarget::Cell {
                column: "Price".into(),
            },
            0,
        )
        .unwrap();
        let model = context_menu(
            &s,
            &ClickTarget::Cell {
                column: "Model".into(),
            },
            0,
        )
        .unwrap();
        let funcs = |entries: &[MenuEntry]| -> Vec<AggFunc> {
            entries
                .iter()
                .find_map(|e| match e {
                    MenuEntry::Aggregate { functions, .. } => Some(functions.clone()),
                    _ => None,
                })
                .unwrap()
        };
        assert!(funcs(&price).contains(&AggFunc::Avg));
        assert!(!funcs(&model).contains(&AggFunc::Avg));
        assert!(funcs(&model).contains(&AggFunc::Count));
        assert!(funcs(&model).contains(&AggFunc::Max));
    }

    #[test]
    fn grouping_state_changes_menu() {
        let mut s = sheet();
        s.group(&["Model"], Direction::Asc).unwrap();
        let menu = context_menu(
            &s,
            &ClickTarget::Header {
                column: "Model".into(),
            },
            0,
        )
        .unwrap();
        // Model is already a grouping attribute: no GroupBy entry.
        assert!(!menu.iter().any(|e| matches!(e, MenuEntry::GroupBy { .. })));
        // Sorting now prompts for the level.
        assert!(menu.iter().any(|e| matches!(
            e,
            MenuEntry::Sort {
                will_prompt_for_level: true
            }
        )));
        // Aggregation offers both levels.
        assert!(menu.iter().any(|e| matches!(
            e,
            MenuEntry::Aggregate {
                level_choices: 2,
                ..
            }
        )));
        // Year can still be grouped, adding level 3.
        let menu = context_menu(
            &s,
            &ClickTarget::Header {
                column: "Year".into(),
            },
            0,
        )
        .unwrap();
        assert!(menu
            .iter()
            .any(|e| matches!(e, MenuEntry::GroupBy { adds_level: 3 })));
    }

    #[test]
    fn selection_dialog_lists_existing_predicates() {
        let mut s = sheet();
        s.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        let menu = context_menu(
            &s,
            &ClickTarget::Cell {
                column: "Year".into(),
            },
            0,
        )
        .unwrap();
        assert!(menu.iter().any(|e| matches!(
            e,
            MenuEntry::SelectionDialog {
                existing_predicates: 1
            }
        )));
    }

    #[test]
    fn reinstate_and_binary_entries_are_conditional() {
        let mut s = sheet();
        let bg = context_menu(&s, &ClickTarget::Background, 0).unwrap();
        assert!(!bg.iter().any(|e| matches!(e, MenuEntry::Reinstate { .. })));
        assert!(!bg.iter().any(|e| matches!(e, MenuEntry::BinaryOps { .. })));
        s.project_out("Mileage").unwrap();
        let bg = context_menu(&s, &ClickTarget::Background, 2).unwrap();
        assert!(bg.iter().any(
            |e| matches!(e, MenuEntry::Reinstate { hidden_columns } if hidden_columns == &vec!["Mileage".to_string()])
        ));
        assert!(bg
            .iter()
            .any(|e| matches!(e, MenuEntry::BinaryOps { stored_sheets: 2 })));
    }

    #[test]
    fn unknown_column_errors() {
        let s = sheet();
        assert!(context_menu(
            &s,
            &ClickTarget::Cell {
                column: "Ghost".into()
            },
            0
        )
        .is_err());
    }
}
