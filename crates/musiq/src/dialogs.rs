//! Dialog models — the small windows of Sec. VI-A, as inspectable data.
//!
//! * **Aggregation** (Fig. 1): after right-clicking a cell and choosing
//!   "aggregation", the user picks a function and — under grouping — the
//!   level, phrased in terms of the current grouping ("over all the cars"
//!   vs "cars of the same Model and Year").
//! * **Selection / comparison** (Fig. 2): the predicate dialog offers the
//!   comparison operators valid for the column's type and lets the user
//!   compare against a constant *or another column* ("compare Price with
//!   Avg_Price"), and lists the predicates already on the column so one
//!   can be replaced or deleted (query modification, Sec. V-B).
//! * **Join**: choosing a stored sheet, the dialog proposes valid join
//!   column pairs and validates the condition before running.
//! * **Formula**: lists the columns and operators available for a
//!   computed column.
//!
//! Dialogs are pure *views* over the sheet state: `open` computes what
//! the prototype would display; `submit` turns the user's choice into the
//! corresponding algebra operation.

use spreadsheet_algebra::{Engine, Result, SheetError, StoredSheet};
use ssa_relation::{AggFunc, CmpOp, Expr, Value, ValueType};

/// Fig. 1 — the aggregation dialog.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationDialog {
    pub column: String,
    /// Functions valid for the column's type.
    pub functions: Vec<AggFunc>,
    /// One entry per grouping level, phrased like the prototype:
    /// `(level, "over the entire sheet" / "per {Model}" / …)`.
    pub level_choices: Vec<(usize, String)>,
}

impl AggregationDialog {
    /// What the dialog shows for a right-click on `column`.
    pub fn open(engine: &Engine, column: &str) -> Result<AggregationDialog> {
        let sheet = engine.sheet();
        let derived = sheet.evaluate_now()?;
        let ty = derived.data.schema().column(column)?.ty;
        let functions: Vec<AggFunc> = AggFunc::ALL
            .into_iter()
            .filter(|f| !f.requires_numeric() || ty.is_numeric() || ty == ValueType::Null)
            .collect();
        let spec = &sheet.state().spec;
        let mut level_choices = vec![(1, "over the entire sheet".to_string())];
        for level in 2..=spec.level_count() {
            let basis: Vec<String> = spec.absolute_basis(level).into_iter().collect();
            level_choices.push((level, format!("per {{{}}}", basis.join(", "))));
        }
        Ok(AggregationDialog {
            column: column.to_string(),
            functions,
            level_choices,
        })
    }

    /// Apply the user's choice. Returns the new column's name.
    pub fn submit(&self, engine: &mut Engine, func: AggFunc, level: usize) -> Result<String> {
        if !self.functions.contains(&func) {
            return Err(SheetError::NonNumericAggregate {
                func: func.short_name().to_string(),
                column: self.column.clone(),
            });
        }
        engine.aggregate(func, &self.column, level)
    }
}

/// What the right side of a comparison can be (Fig. 2's "compare with").
#[derive(Debug, Clone, PartialEq)]
pub enum CompareWith {
    Constant(Value),
    Column(String),
}

/// Fig. 2 — the selection dialog for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionDialog {
    pub column: String,
    /// Comparison operators offered (equality always; range operators for
    /// orderable values — every type here, per the total order).
    pub comparisons: Vec<CmpOp>,
    /// Other columns of compatible type the user may compare against
    /// (this is how "Price < Avg_Price" is specified by clicks alone).
    pub comparable_columns: Vec<String>,
    /// Predicates already applied to this column, as `(id, text)` — the
    /// query-modification list of Sec. V-B.
    pub existing: Vec<(u64, String)>,
}

impl SelectionDialog {
    pub fn open(engine: &Engine, column: &str) -> Result<SelectionDialog> {
        let sheet = engine.sheet();
        let derived = sheet.evaluate_now()?;
        let ty = derived.data.schema().column(column)?.ty;
        let comparable_columns = derived
            .visible
            .iter()
            .filter(|c| c.as_str() != column)
            .filter(|c| {
                derived
                    .data
                    .schema()
                    .column(c)
                    .map(|col| {
                        col.ty == ty
                            || (col.ty.is_numeric() && ty.is_numeric())
                            || col.ty == ValueType::Null
                            || ty == ValueType::Null
                    })
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        let existing = sheet
            .state()
            .selections_on(column)
            .into_iter()
            .map(|s| (s.id, s.predicate.to_string()))
            .collect();
        Ok(SelectionDialog {
            column: column.to_string(),
            comparisons: vec![
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ],
            comparable_columns,
            existing,
        })
    }

    fn predicate(&self, op: CmpOp, with: &CompareWith) -> Expr {
        let rhs = match with {
            CompareWith::Constant(v) => Expr::Lit(*v),
            CompareWith::Column(c) => Expr::col(c.clone()),
        };
        Expr::col(&self.column).cmp(op, rhs)
    }

    /// Add a new predicate ("specify the new predicate in addition to
    /// those previously specified"). Returns its id.
    pub fn submit_new(&self, engine: &mut Engine, op: CmpOp, with: CompareWith) -> Result<u64> {
        engine.select(self.predicate(op, &with))
    }

    /// Replace a previously applied predicate (history is rewritten).
    pub fn submit_replace(
        &self,
        engine: &mut Engine,
        existing_id: u64,
        op: CmpOp,
        with: CompareWith,
    ) -> Result<()> {
        if !self.existing.iter().any(|(id, _)| *id == existing_id) {
            return Err(SheetError::UnknownSelection { id: existing_id });
        }
        engine.replace_selection(existing_id, self.predicate(op, &with))
    }

    /// Delete a previously applied predicate "without specifying a new
    /// predicate at all".
    pub fn submit_delete(&self, engine: &mut Engine, existing_id: u64) -> Result<()> {
        if !self.existing.iter().any(|(id, _)| *id == existing_id) {
            return Err(SheetError::UnknownSelection { id: existing_id });
        }
        engine.remove_selection(existing_id)
    }
}

/// The join dialog: stored-sheet choice plus graphically proposed
/// equi-join pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinDialog {
    pub stored_name: String,
    /// `(left column, right column)` pairs with compatible types —
    /// right-side names are as they will appear after the join (prefixed
    /// when clashing).
    pub proposed_pairs: Vec<(String, String)>,
}

impl JoinDialog {
    pub fn open(engine: &Engine, stored: &StoredSheet) -> Result<JoinDialog> {
        let left = engine.sheet().evaluate_now()?;
        let mut proposed_pairs = Vec::new();
        for lc in left.data.schema().columns() {
            for rc in stored.relation.schema().columns() {
                let compatible = lc.ty == rc.ty || (lc.ty.is_numeric() && rc.ty.is_numeric());
                if !compatible {
                    continue;
                }
                // name the right column as the combined schema will
                let rname = if left.data.schema().contains(&rc.name) {
                    format!("{}.{}", stored.relation.name(), rc.name)
                } else {
                    rc.name.clone()
                };
                // propose only plausible pairs: same (suffix) name
                let plausible = lc.name == rc.name
                    || lc
                        .name
                        .to_ascii_lowercase()
                        .contains(&rc.name.to_ascii_lowercase())
                    || rc
                        .name
                        .to_ascii_lowercase()
                        .contains(&lc.name.to_ascii_lowercase());
                if plausible {
                    proposed_pairs.push((lc.name.clone(), rname));
                }
            }
        }
        Ok(JoinDialog {
            stored_name: stored.name.clone(),
            proposed_pairs,
        })
    }

    /// Run the join on one of the proposed pairs (or any custom pair —
    /// the engine validates and "any invalid condition is reported to the
    /// user immediately").
    pub fn submit(
        &self,
        engine: &mut Engine,
        stored: &StoredSheet,
        left_column: &str,
        right_column: &str,
    ) -> Result<()> {
        engine.join(stored, Expr::col(left_column).eq(Expr::col(right_column)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spreadsheet_algebra::fixtures::{dealers, used_cars};
    use spreadsheet_algebra::{Direction, Engine, Spreadsheet};

    fn engine() -> Engine {
        Engine::over(used_cars())
    }

    #[test]
    fn aggregation_dialog_matches_fig1() {
        let mut e = engine();
        e.group_add(&["Model"], Direction::Asc).unwrap();
        e.group_add(&["Year"], Direction::Asc).unwrap();
        let d = AggregationDialog::open(&e, "Price").unwrap();
        assert!(d.functions.contains(&AggFunc::Avg));
        // Fig. 1's choice: over all the cars, or per Model, or per
        // (Model, Year)
        assert_eq!(d.level_choices.len(), 3);
        assert_eq!(d.level_choices[0].1, "over the entire sheet");
        assert!(d.level_choices[2].1.contains("Model"));
        assert!(d.level_choices[2].1.contains("Year"));
        let name = d.submit(&mut e, AggFunc::Avg, 3).unwrap();
        assert_eq!(name, "Avg_Price");
        let view = e.view().unwrap();
        assert!(view.data.schema().contains("Avg_Price"));
    }

    #[test]
    fn aggregation_dialog_blocks_invalid_function() {
        let mut e = engine();
        let d = AggregationDialog::open(&e, "Model").unwrap();
        assert!(!d.functions.contains(&AggFunc::Sum));
        assert!(d.submit(&mut e, AggFunc::Sum, 1).is_err());
        assert!(d.submit(&mut e, AggFunc::Count, 1).is_ok());
    }

    #[test]
    fn selection_dialog_compares_price_with_avg_price_like_fig2() {
        let mut e = engine();
        e.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        let d = SelectionDialog::open(&e, "Price").unwrap();
        // the computed column is offered as a comparison target
        assert!(d.comparable_columns.contains(&"Avg_Price".to_string()));
        // strings are not
        assert!(!d.comparable_columns.contains(&"Model".to_string()));
        d.submit_new(&mut e, CmpOp::Lt, CompareWith::Column("Avg_Price".into()))
            .unwrap();
        assert_eq!(e.view().unwrap().len(), 4);
    }

    #[test]
    fn selection_dialog_lists_and_replaces_existing() {
        let mut e = engine();
        let id = e.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        let d = SelectionDialog::open(&e, "Year").unwrap();
        assert_eq!(d.existing.len(), 1);
        assert_eq!(d.existing[0].0, id);
        assert!(d.existing[0].1.contains("Year = 2005"));
        d.submit_replace(
            &mut e,
            id,
            CmpOp::Eq,
            CompareWith::Constant(Value::Int(2006)),
        )
        .unwrap();
        assert_eq!(e.view().unwrap().len(), 5);
        // deleting through the dialog restores everything
        let d = SelectionDialog::open(&e, "Year").unwrap();
        d.submit_delete(&mut e, id).unwrap();
        assert_eq!(e.view().unwrap().len(), 9);
        // stale ids are rejected
        assert!(d.submit_delete(&mut e, 999).is_err());
        assert!(d
            .submit_replace(&mut e, 999, CmpOp::Eq, CompareWith::Constant(Value::Int(1)))
            .is_err());
    }

    #[test]
    fn join_dialog_proposes_model_pair() {
        let e = engine();
        let stored = Spreadsheet::over(dealers()).save("dealers").unwrap();
        let d = JoinDialog::open(&e, &stored).unwrap();
        // Model exists on both sides with a clash → right side prefixed.
        assert!(d
            .proposed_pairs
            .contains(&("Model".to_string(), "dealers.Model".to_string())));
        let mut e = engine();
        d.submit(&mut e, &stored, "Model", "dealers.Model").unwrap();
        assert_eq!(e.view().unwrap().len(), 12);
    }

    #[test]
    fn join_dialog_invalid_pair_reported_immediately() {
        let mut e = engine();
        let stored = Spreadsheet::over(dealers()).save("dealers").unwrap();
        let d = JoinDialog::open(&e, &stored).unwrap();
        let err = d.submit(&mut e, &stored, "Ghost", "City").unwrap_err();
        assert!(matches!(err, SheetError::UnknownColumn { .. }));
        // sheet untouched by the failed join
        assert_eq!(e.sheet().epoch(), 0);
    }
}
