//! Direct-manipulation user actions (Sec. VI-A) and their mapping onto
//! algebra operators.
//!
//! * clicking a column header sorts ascending; clicking again flips to
//!   descending (the header shows an up/down arrow);
//! * unchecking the checkbox left of a header projects the column out;
//!   re-checking (via the drop-down) reinstates it;
//! * right-click on a cell → "filter by this value" applies an equality
//!   selection with the cell's value, result shown immediately.

use crate::session::Session;
use spreadsheet_algebra::{Direction, Result, SheetError};
use ssa_relation::{Expr, Tuple, Value};
use std::collections::BTreeMap;

/// One user gesture.
#[derive(Debug, Clone, PartialEq)]
pub enum UserAction {
    /// Click the column header; under grouping the interface prompts for
    /// the level, carried here.
    ClickHeader {
        column: String,
        level: Option<usize>,
    },
    /// Uncheck the projection checkbox.
    UncheckColumn { column: String },
    /// Re-check a projected-out column from the drop-down.
    CheckColumn { column: String },
    /// Right-click a cell, choose "filter by this value".
    FilterByCellValue { column: String, row: usize },
    /// A live feed (or an editing user) appends base rows; the cached
    /// view is patched incrementally (DESIGN.md §14).
    FeedRows { rows: Vec<Tuple> },
    /// Delete base rows by base position.
    DeleteRows { ids: Vec<u32> },
    /// Edit one base cell in place.
    EditCell {
        row: u32,
        column: String,
        value: Value,
    },
}

/// Tracks the asc/desc toggle per column, like the header arrows.
#[derive(Debug, Default)]
pub struct HeaderToggles {
    directions: BTreeMap<String, Direction>,
}

impl HeaderToggles {
    pub fn new() -> HeaderToggles {
        HeaderToggles::default()
    }

    /// Direction the next click on `column` applies (and records).
    fn next(&mut self, column: &str) -> Direction {
        let next = match self.directions.get(column) {
            Some(Direction::Asc) => Direction::Desc,
            Some(Direction::Desc) | None => Direction::Asc,
        };
        self.directions.insert(column.to_string(), next);
        next
    }

    /// The arrow currently shown on a header, if any.
    pub fn shown(&self, column: &str) -> Option<Direction> {
        self.directions.get(column).copied()
    }
}

/// Apply one gesture to the session's current sheet.
pub fn apply_action(
    session: &mut Session,
    toggles: &mut HeaderToggles,
    action: &UserAction,
) -> Result<()> {
    match action {
        UserAction::ClickHeader { column, level } => {
            let dir = toggles.next(column);
            let engine = session.engine()?;
            let level = level.unwrap_or_else(|| engine.sheet().state().spec.level_count());
            engine.order(column, dir, level)
        }
        UserAction::UncheckColumn { column } => session.engine()?.project_out(column),
        UserAction::CheckColumn { column } => session.engine()?.reinstate(column),
        UserAction::FilterByCellValue { column, row } => {
            let engine = session.engine()?;
            let value: Value = {
                let view = engine.view()?;
                if *row >= view.len() {
                    return Err(SheetError::Relation(
                        ssa_relation::RelationError::TypeMismatch {
                            context: format!("row {row} out of range"),
                        },
                    ));
                }
                *view.data.value_at(*row, column)?
            };
            engine
                .select(Expr::col(column).eq(Expr::Lit(value)))
                .map(|_| ())
        }
        UserAction::FeedRows { rows } => session.engine()?.append_rows(rows.clone()).map(|_| ()),
        UserAction::DeleteRows { ids } => session.engine()?.delete_rows(ids).map(|_| ()),
        UserAction::EditCell { row, column, value } => session
            .engine()?
            .update_cell(*row, column, *value)
            .map(|_| ()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spreadsheet_algebra::fixtures::used_cars;
    use ssa_relation::Catalog;

    fn session() -> Session {
        let mut c = Catalog::new();
        c.register(used_cars()).unwrap();
        let mut s = Session::new(c);
        s.load("cars").unwrap();
        s
    }

    #[test]
    fn header_click_toggles_asc_then_desc() {
        let mut s = session();
        let mut t = HeaderToggles::new();
        let click = UserAction::ClickHeader {
            column: "Price".into(),
            level: None,
        };
        apply_action(&mut s, &mut t, &click).unwrap();
        assert_eq!(t.shown("Price"), Some(Direction::Asc));
        {
            let v = s.engine().unwrap().view().unwrap();
            assert_eq!(v.data.value_at(0, "Price").unwrap(), &Value::Int(13500));
        }
        apply_action(&mut s, &mut t, &click).unwrap();
        assert_eq!(t.shown("Price"), Some(Direction::Desc));
        let v = s.engine().unwrap().view().unwrap();
        assert_eq!(v.data.value_at(0, "Price").unwrap(), &Value::Int(18000));
    }

    #[test]
    fn checkbox_projects_and_reinstates() {
        let mut s = session();
        let mut t = HeaderToggles::new();
        apply_action(
            &mut s,
            &mut t,
            &UserAction::UncheckColumn {
                column: "Mileage".into(),
            },
        )
        .unwrap();
        assert!(!s
            .engine()
            .unwrap()
            .view()
            .unwrap()
            .visible
            .contains(&"Mileage".to_string()));
        apply_action(
            &mut s,
            &mut t,
            &UserAction::CheckColumn {
                column: "Mileage".into(),
            },
        )
        .unwrap();
        assert!(s
            .engine()
            .unwrap()
            .view()
            .unwrap()
            .visible
            .contains(&"Mileage".to_string()));
    }

    #[test]
    fn filter_by_cell_value() {
        let mut s = session();
        let mut t = HeaderToggles::new();
        // Row 0 of the unsorted sheet is ID 304, a Jetta.
        apply_action(
            &mut s,
            &mut t,
            &UserAction::FilterByCellValue {
                column: "Model".into(),
                row: 0,
            },
        )
        .unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 6);
        // result shown immediately and recorded in history
        assert!(s.engine().unwrap().history()[0].contains("Model = 'Jetta'"));
    }

    #[test]
    fn feed_actions_edit_the_base() {
        use ssa_relation::tuple;
        let mut s = session();
        let mut t = HeaderToggles::new();
        apply_action(
            &mut s,
            &mut t,
            &UserAction::FeedRows {
                rows: vec![tuple![999, "Jetta", 15500, 2005, 60000, "Good"]],
            },
        )
        .unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 10);
        apply_action(
            &mut s,
            &mut t,
            &UserAction::EditCell {
                row: 9,
                column: "Price".into(),
                value: Value::Int(15750),
            },
        )
        .unwrap();
        apply_action(&mut s, &mut t, &UserAction::DeleteRows { ids: vec![9] }).unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 9);
        let h = s.engine().unwrap().history();
        assert!(h[0].contains("Append 1 row(s)"));
        assert!(h[1].contains("Update Price of base row 9"));
        assert!(h[2].contains("Delete 1 row(s)"));
        // Undo unwinds the whole feed burst.
        s.engine().unwrap().undo_steps(3).unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 9);
        assert_eq!(s.engine().unwrap().sheet().base().len(), 9);
    }

    #[test]
    fn filter_by_out_of_range_row_errors() {
        let mut s = session();
        let mut t = HeaderToggles::new();
        let r = apply_action(
            &mut s,
            &mut t,
            &UserAction::FilterByCellValue {
                column: "Model".into(),
                row: 99,
            },
        );
        assert!(r.is_err());
    }
}
