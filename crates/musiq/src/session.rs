//! A SheetMusiq session: one *current* spreadsheet plus a store of saved
//! sheets, over a catalog of base relations.
//!
//! "The spreadsheet is designed such that it should be sufficient to
//! present only one spreadsheet to the user at any time" (Sec. III-B);
//! binary operators pick their right operand from the store of previously
//! saved sheets, exactly as the prototype's pop-up menu does (Sec. VI-A).

use spreadsheet_algebra::{Engine, Result, SheetError, Spreadsheet, StoredSheet};
use ssa_relation::{Catalog, Relation};
use std::collections::BTreeMap;

/// The interface-level session state.
#[derive(Debug)]
pub struct Session {
    catalog: Catalog,
    current: Option<Engine>,
    stored: BTreeMap<String, StoredSheet>,
}

impl Session {
    pub fn new(catalog: Catalog) -> Session {
        Session {
            catalog,
            current: None,
            stored: BTreeMap::new(),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register another base relation mid-session.
    pub fn register(&mut self, relation: Relation) -> ssa_relation::Result<()> {
        self.catalog.register(relation)
    }

    /// Load a base relation as the current spreadsheet (replacing any
    /// current sheet — the prototype's Close-then-Open flow).
    pub fn load(&mut self, relation_name: &str) -> Result<()> {
        let rel = self
            .catalog
            .get(relation_name)
            .map_err(SheetError::from)?
            .clone();
        self.current = Some(Engine::over(rel));
        Ok(())
    }

    /// The current engine, or an error the UI shows as "no sheet open".
    pub fn engine(&mut self) -> Result<&mut Engine> {
        self.current.as_mut().ok_or(SheetError::UnknownSheet {
            name: "<current>".into(),
        })
    }

    /// Read-only view of the current engine.
    pub fn engine_ref(&self) -> Result<&Engine> {
        self.current.as_ref().ok_or(SheetError::UnknownSheet {
            name: "<current>".into(),
        })
    }

    pub fn has_current(&self) -> bool {
        self.current.is_some()
    }

    /// **Save**: snapshot the current sheet under a name.
    pub fn save(&mut self, name: &str) -> Result<()> {
        let stored = self.engine()?.save(name.to_string())?;
        self.stored.insert(name.to_string(), stored);
        Ok(())
    }

    /// **Open**: make a stored sheet the current one.
    pub fn open(&mut self, name: &str) -> Result<()> {
        let stored = self
            .stored
            .get(name)
            .ok_or_else(|| SheetError::UnknownSheet {
                name: name.to_string(),
            })?;
        self.current = Some(Engine::from_sheet(Spreadsheet::open(stored)?));
        Ok(())
    }

    /// **Close**: drop the current sheet (stored sheets survive).
    pub fn close(&mut self) {
        self.current = None;
    }

    /// Make an externally built engine the current sheet (used by the
    /// `sql` script command, which builds a sheet through the Theorem-1
    /// translation).
    pub fn adopt(&mut self, engine: Engine) {
        self.current = Some(engine);
    }

    /// Names of stored sheets — what the binary-operator pop-up lists.
    pub fn stored_names(&self) -> Vec<&str> {
        self.stored.keys().map(|s| s.as_str()).collect()
    }

    pub fn stored(&self, name: &str) -> Result<&StoredSheet> {
        self.stored
            .get(name)
            .ok_or_else(|| SheetError::UnknownSheet {
                name: name.to_string(),
            })
    }

    /// Remove a stored sheet.
    pub fn discard_stored(&mut self, name: &str) -> Result<()> {
        self.stored
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SheetError::UnknownSheet {
                name: name.to_string(),
            })
    }

    // Binary operators take the stored sheet by name.

    pub fn product(&mut self, stored_name: &str) -> Result<()> {
        let stored = self.stored(stored_name)?.clone();
        self.engine()?.product(&stored)
    }

    pub fn union(&mut self, stored_name: &str) -> Result<()> {
        let stored = self.stored(stored_name)?.clone();
        self.engine()?.union(&stored)
    }

    pub fn difference(&mut self, stored_name: &str) -> Result<()> {
        let stored = self.stored(stored_name)?.clone();
        self.engine()?.difference(&stored)
    }

    pub fn join(&mut self, stored_name: &str, condition: ssa_relation::Expr) -> Result<()> {
        let stored = self.stored(stored_name)?.clone();
        self.engine()?.join(&stored, condition)
    }

    /// `EXPLAIN` — the operator DAG the evaluator would execute for the
    /// current sheet, rendered as an indented text tree. A read-only
    /// debug action: plans without evaluating.
    pub fn explain(&self) -> Result<String> {
        self.engine_ref()?.sheet().explain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spreadsheet_algebra::fixtures::{dealers, used_cars};
    use spreadsheet_algebra::Direction;
    use ssa_relation::Expr;

    fn session() -> Session {
        let mut c = Catalog::new();
        c.register(used_cars()).unwrap();
        c.register(dealers()).unwrap();
        Session::new(c)
    }

    #[test]
    fn load_and_view() {
        let mut s = session();
        assert!(!s.has_current());
        assert!(s.engine().is_err());
        s.load("cars").unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 9);
        assert!(s.load("ghost").is_err());
    }

    #[test]
    fn save_open_close_cycle() {
        let mut s = session();
        s.load("cars").unwrap();
        s.engine()
            .unwrap()
            .select(Expr::col("Model").eq(Expr::lit("Jetta")))
            .unwrap();
        s.save("jettas").unwrap();
        s.close();
        assert!(!s.has_current());
        s.open("jettas").unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 6);
        assert_eq!(s.stored_names(), vec!["jettas"]);
        assert!(s.open("ghost").is_err());
    }

    #[test]
    fn binary_operators_by_stored_name() {
        let mut s = session();
        s.load("cars").unwrap();
        s.engine()
            .unwrap()
            .select(Expr::col("Model").eq(Expr::lit("Jetta")))
            .unwrap();
        s.save("jettas").unwrap();
        s.load("cars").unwrap();
        s.difference("jettas").unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 3);

        s.load("cars").unwrap();
        s.union("jettas").unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 15);

        s.load("dealers").unwrap();
        s.save("dealers_snap").unwrap();
        s.load("cars").unwrap();
        s.join(
            "dealers_snap",
            Expr::col("Model").eq(Expr::col("dealers.Model")),
        )
        .unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 12);

        assert!(s.product("ghost").is_err());
    }

    #[test]
    fn discard_stored_sheet() {
        let mut s = session();
        s.load("cars").unwrap();
        s.save("a").unwrap();
        s.discard_stored("a").unwrap();
        assert!(s.stored("a").is_err());
        assert!(s.discard_stored("a").is_err());
    }

    #[test]
    fn register_mid_session() {
        let mut s = session();
        let mut extra = Relation::new(
            "extra",
            ssa_relation::Schema::of(&[("x", ssa_relation::ValueType::Int)]),
        );
        extra.insert(ssa_relation::tuple![1]).unwrap();
        s.register(extra).unwrap();
        s.load("extra").unwrap();
        assert_eq!(s.engine().unwrap().view().unwrap().len(), 1);
    }

    #[test]
    fn undo_after_load_works_through_session() {
        let mut s = session();
        s.load("cars").unwrap();
        let e = s.engine().unwrap();
        e.group_add(&["Model"], Direction::Asc).unwrap();
        e.undo().unwrap();
        assert_eq!(e.sheet().state().spec.level_count(), 1);
    }
}
