//! Run the simulated user study and print the full evaluation report:
//! Figs. 3–5, the significance tests, and Table VI.
//!
//! ```sh
//! cargo run --release --example user_study [seed]
//! ```
//!
//! Different seeds draw different participant panels; the headline shape
//! (SheetMusiq faster and more accurate on concept-heavy tasks, parity on
//! the simple ones) is stable across seeds.

use sheetmusiq_repro::study::{render_report, run_study, StudyConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2009);
    println!("Simulated user study: 10 subjects × 10 tasks × 2 tools (seed {seed}).");
    println!("System check first: every task is executed through the spreadsheet");
    println!("algebra and compared against the SQL reference evaluator.\n");

    let result = run_study(&StudyConfig {
        seed,
        scale: 0.05,
        verify_system: true,
    });
    println!("{}", render_report(&result));
}
