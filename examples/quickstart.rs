//! Quickstart: the spreadsheet algebra in twenty lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::render::render_table;

fn main() {
    // A spreadsheet over a base relation (the paper's Table I data).
    let mut sheet = Spreadsheet::over(used_cars());

    // Direct manipulation, one small step at a time — every intermediate
    // result is a complete, presentable spreadsheet.
    sheet
        .group(&["Model"], Direction::Desc)
        .expect("group by Model");
    sheet
        .group(&["Model", "Year"], Direction::Asc)
        .expect("then by Year");
    sheet
        .order("Price", Direction::Asc, 3)
        .expect("order finest groups by Price");

    // Aggregation is a *computed column*: the per-group average appears on
    // every row and auto-updates when the data changes.
    let avg = sheet
        .aggregate(AggFunc::Avg, "Price", 3)
        .expect("average per (Model, Year)");

    // Select against the aggregate — no subquery needed.
    let bargain = sheet
        .select(Expr::col("Price").le(Expr::col(&avg)))
        .expect("filter at-or-below average");

    println!("Cars at or below their (Model, Year) average price:\n");
    println!("{}", render_table(sheet.view().expect("evaluates")));

    // Changed your mind? Edit the retained predicate — no redoing steps.
    sheet
        .replace_selection(bargain, Expr::col("Price").lt(Expr::col(&avg)))
        .expect("modify the retained predicate");
    println!("Strictly below average (after query modification):\n");
    println!("{}", render_table(sheet.view().expect("evaluates")));
}
