//! Query modification end-to-end (Sec. V): the retained query state, the
//! per-column predicate list, replace/delete/reinstate, cascaded removal
//! of dependent columns, and the point of non-commutativity.
//!
//! ```sh
//! cargo run --example query_modification
//! ```

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::render::render_table;

fn show(engine: &mut Engine, title: &str) {
    println!("— {title} —");
    println!("{}", render_table(engine.view().expect("sheet evaluates")));
}

fn main() {
    let mut engine = Engine::over(used_cars());

    // Build up Sam's query one step at a time.
    let year = engine
        .select(Expr::col("Year").eq(Expr::lit(2005)))
        .expect("Year exists");
    engine
        .select(Expr::col("Model").eq(Expr::lit("Jetta")))
        .expect("Model exists");
    engine
        .select(Expr::col("Mileage").lt(Expr::lit(80_000)))
        .expect("Mileage exists");
    engine.group(&["Condition"], Direction::Asc).expect("group");
    engine.order("Price", Direction::Asc, 2).expect("order");
    show(&mut engine, "Table IV: Year = 2005, Jetta, mileage < 80k");

    // The query state, as the History menu would describe it:
    println!("query state:");
    for line in engine.sheet().state().describe() {
        println!("  · {line}");
    }

    // Sam's budget grows: modify the retained Year predicate. Everything
    // else — model filter, grouping, ordering — stays in force.
    engine
        .replace_selection(year, Expr::col("Year").eq(Expr::lit(2006)))
        .expect("the predicate is still modifiable");
    show(&mut engine, "Table V: the same query with Year = 2006");

    // The modification is itself an undoable history entry.
    println!("history:");
    for line in engine.history() {
        println!("  {line}");
    }
    engine.undo().expect("undo the modification");
    println!(
        "after undo, back to {} rows\n",
        engine.view().expect("evaluates").len()
    );
    engine.redo().expect("redo it");

    // Cascaded removal: an aggregate with dependents cannot be dropped
    // one-shot; the plan lists what must go first.
    let avg = engine
        .aggregate(AggFunc::Avg, "Price", 2)
        .expect("aggregate");
    engine
        .select(Expr::col("Price").le(Expr::col(&avg)))
        .expect("select on aggregate");
    let err = engine
        .remove_computed(&avg)
        .expect_err("dependents block removal");
    println!("one-shot removal refused: {err}");
    let plan = engine
        .sheet_mut()
        .remove_with_cascade(&avg)
        .expect("cascade succeeds");
    println!("cascade executed: {plan}\n");
    show(&mut engine, "after cascade (aggregate and dependents gone)");

    // A binary operator ends the rewritable region.
    let snapshot = engine.save("before-union").expect("save");
    engine.union(&snapshot).expect("union");
    println!(
        "after union, earlier selections are consumed: {} remain modifiable",
        engine.sheet().state().selections.len()
    );
}
