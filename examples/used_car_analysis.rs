//! Sam's full used-car session — the paper's running example (Secs. I-B,
//! V, VI-A) driven through the SheetMusiq interface layer: session,
//! script language, contextual menus, history, undo and query
//! modification.
//!
//! ```sh
//! cargo run --example used_car_analysis
//! ```

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::{dealers, used_cars};

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(used_cars()).expect("register cars");
    catalog.register(dealers()).expect("register dealers");
    let mut host = ScriptHost::new(Session::new(catalog));

    let mut run = |line: &str| {
        let out = host
            .execute(line)
            .unwrap_or_else(|e| panic!("`{line}` failed: {e}"));
        println!("musiq> {line}");
        if !out.is_empty() {
            println!("{out}");
        }
        println!();
    };

    println!("— Sam explores the used-car database —\n");

    // Sam cares about Model and Price the most: group by Model and Year.
    run("load cars");
    run("group Model desc");
    run("group Year");

    // Late-model cars in good or excellent condition.
    run("select Year >= 2005");
    run("select Condition = 'Good' OR Condition = 'Excellent'");

    // What's the average price per (Model, Year)? (Fig. 1's dialog.)
    run("agg avg Price 3");
    run("show");

    // Filter out cars more expensive than the average (Fig. 2).
    run("select Price <= Avg_Price");
    run("show");

    // The history menu: every manipulation, numbered and named.
    run("history");

    // Sam's budget grows: change Year >= 2005 to Year >= 2006 *through
    // query state* — the grouping, ordering and other selections stay.
    run("filters Year");
    run("modify 0 Year >= 2006");
    run("show");

    // All actions are reversible.
    run("undo");
    run("redo");

    // Save the sheet, look at dealers, and join back.
    run("save bargains");
    run("load dealers");
    run("save dealer_list");
    run("open bargains");
    run("join dealer_list on Model = \"dealers.Model\"");
    run("show");

    // What the contextual menu offers on the Price column now:
    run("menu Price");
}
