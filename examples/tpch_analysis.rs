//! The ten TPC-H study tasks, executed end-to-end through *both* paths:
//! the SQL reference evaluator and the Theorem-1 spreadsheet-algebra
//! translation — demonstrating the expressive-power result on generated
//! data.
//!
//! ```sh
//! cargo run --release --example tpch_analysis [scale]
//! ```

use sheetmusiq_repro::tpch::{study_setup, Complexity};
use ssa_sql::{equivalent, eval_select, translate};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("Generating TPC-H data at scale {scale} (seed 2009)…");
    let t0 = Instant::now();
    let (catalog, tasks) = study_setup(scale, 2009);
    println!("generated + views materialized in {:?}\n", t0.elapsed());

    println!(
        "{:>2}  {:<22} {:<8} {:>8} {:>12} {:>12}  equivalent?",
        "id", "task", "class", "rows", "sql-eval", "algebra"
    );
    for task in &tasks {
        let stmt = task.stmt();

        let t_sql = Instant::now();
        let reference = eval_select(&stmt, &catalog).expect("reference evaluates");
        let t_sql = t_sql.elapsed();

        let t_alg = Instant::now();
        let translated = translate(&stmt, &catalog).expect("translation succeeds");
        let sheet_result = translated.result().expect("sheet evaluates");
        let t_alg = t_alg.elapsed();

        let ok = equivalent(&stmt, &reference, &sheet_result);
        println!(
            "{:>2}  {:<22} {:<8} {:>8} {:>12?} {:>12?}  {}",
            task.id,
            task.name,
            match task.complexity {
                Complexity::Simple => "simple",
                Complexity::Moderate => "moderate",
                Complexity::Complex => "complex",
            },
            reference.len(),
            t_sql,
            t_alg,
            if ok { "yes" } else { "NO!" }
        );
        assert!(ok, "task {} must be equivalent", task.id);
    }

    println!("\nEvery task's spreadsheet-algebra program matches the SQL reference —");
    println!("Theorem 1, demonstrated on generated data.");

    // Show one task's English statement and SQL, for flavour.
    let t9 = &tasks[8];
    println!(
        "\nExample task {} ({}):\n  {}\n  SQL: {}",
        t9.id, t9.name, t9.description, t9.sql
    );
}
