//! The binary columnar persistence format (DESIGN.md §16): JSON↔binary
//! round-trip equivalence, bitwise value fidelity, corruption
//! robustness, paged lazy loading, and format auto-detection.

mod common;

use common::arb_sheet;
use spreadsheet_algebra::storage::{
    open_paged, open_sheet, save_sheet_json, PagedSheet, SheetFile,
};
use spreadsheet_algebra::{QueryState, Spreadsheet, StoredSheet};
use ssa_relation::rng::Rng;
use ssa_relation::{Expr, Relation, Schema, Tuple, Value, ValueType};

fn temp_file(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ssa_persist_{tag}_{}.sheet", std::process::id()))
}

/// Per-cell bitwise equality: stricter than `Value`'s `total_cmp`-based
/// `Eq` in exactly one place — float cells must keep their bit pattern,
/// NaN payloads included.
fn assert_bitwise_eq(a: &Relation, b: &Relation, ctx: &str) {
    assert_eq!(a.schema(), b.schema(), "{ctx}: schema");
    assert_eq!(a.len(), b.len(), "{ctx}: row count");
    for (i, (ra, rb)) in a.rows().iter().zip(b.rows()).enumerate() {
        for (j, (va, vb)) in ra.values().iter().zip(rb.values()).enumerate() {
            match (va, vb) {
                (Value::Float(fa), Value::Float(fb)) => assert_eq!(
                    fa.to_bits(),
                    fb.to_bits(),
                    "{ctx}: float bits at row {i} col {j}"
                ),
                _ => assert_eq!(va, vb, "{ctx}: value at row {i} col {j}"),
            }
        }
    }
}

/// Any sheet savable in either format reopens identically from both:
/// schema, rows, query state (computed definitions, grouping, ordering,
/// projections) — and the two decoders agree with each other.
#[test]
fn json_and_binary_round_trips_agree() {
    let mut rng = Rng::seed_from_u64(0xB1_9A17);
    for case in 0..40u64 {
        let sheet = arb_sheet(&mut rng);
        let stored = sheet.save(format!("case-{case}")).expect("save");

        let bin = stored.to_binary().expect("encode binary");
        let from_bin = StoredSheet::from_binary(bin).expect("decode binary");
        assert_eq!(from_bin, stored, "case {case}: binary round trip");
        assert_bitwise_eq(&from_bin.relation, &stored.relation, "binary");

        let json = stored.to_json().expect("encode json");
        let from_json = StoredSheet::from_json(&json).expect("decode json");
        assert_eq!(from_json, stored, "case {case}: json round trip");

        assert_eq!(from_bin, from_json, "case {case}: decoders agree");
        // Both reopen into working spreadsheets with the same view.
        let mut a = Spreadsheet::open(&from_bin).expect("open binary copy");
        let mut b = Spreadsheet::open(&from_json).expect("open json copy");
        assert_eq!(a.view().expect("view"), b.view().expect("view"));
    }
}

/// The values the JSON codec handles specially — NaN/inf floats, 64-bit
/// extremes, quoted/unicode strings, nulls, booleans, mixed-type and
/// all-null columns — survive both formats; the binary format
/// additionally keeps NaN payload bits that JSON canonicalizes.
#[test]
fn special_values_round_trip_bitwise() {
    let weird_nan = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
    let relation = Relation::with_rows(
        "specials",
        Schema::of(&[
            ("i", ValueType::Int),
            ("f", ValueType::Float),
            ("s", ValueType::Str),
            ("b", ValueType::Bool),
            ("mixed", ValueType::Str),
            ("empty", ValueType::Null),
        ]),
        vec![
            Tuple::new(vec![
                Value::Int(i64::MAX),
                Value::Float(f64::NAN),
                Value::str("it's got 'quotes' and \"doubles\""),
                Value::Bool(true),
                Value::Int(7),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int(i64::MIN),
                Value::Float(f64::NEG_INFINITY),
                Value::str("newline\nand\ttab and ünïcödé"),
                Value::Bool(false),
                Value::str("seven"),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Null,
                Value::Float(-0.0),
                Value::str(""),
                Value::Null,
                Value::Bool(true),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int(0),
                Value::Float(f64::INFINITY),
                Value::Null,
                Value::Bool(true),
                Value::Float(2.5),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int(-1),
                Value::Float(0.1 + 0.2),
                Value::str("plain"),
                Value::Bool(false),
                Value::Null,
                Value::Null,
            ]),
        ],
    )
    .expect("specials relation");
    let stored = StoredSheet {
        name: "specials".into(),
        relation,
        state: QueryState::new(),
    };

    let from_bin = StoredSheet::from_binary(stored.to_binary().expect("encode")).expect("decode");
    assert_bitwise_eq(&from_bin.relation, &stored.relation, "specials binary");

    let from_json =
        StoredSheet::from_json(&stored.to_json().expect("encode")).expect("decode json");
    assert_bitwise_eq(&from_json.relation, &stored.relation, "specials json");

    // Binary-only guarantee: a NaN with a nonstandard payload keeps its
    // exact bits (JSON's `Display` canonicalizes every NaN to one bit
    // pattern, which `Value`'s total_cmp equality would reject).
    let mut nan_sheet = stored.clone();
    nan_sheet
        .relation
        .set_value(0, "f", Value::Float(weird_nan))
        .expect("set");
    let back = StoredSheet::from_binary(nan_sheet.to_binary().expect("encode")).expect("decode");
    match back.relation.value_at(0, "f").expect("cell") {
        Value::Float(f) => assert_eq!(f.to_bits(), weird_nan.to_bits(), "NaN payload"),
        other => panic!("expected float, got {other:?}"),
    }
}

/// Page-boundary row counts (empty, one, exactly one page, one past).
#[test]
fn page_boundary_row_counts_round_trip() {
    for rows in [0usize, 1, 65_536, 65_537] {
        let relation = Relation::with_rows(
            "pages",
            Schema::of(&[("n", ValueType::Int), ("tag", ValueType::Str)]),
            (0..rows)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i as i64),
                        Value::from(format!("t{}", i % 3)),
                    ])
                })
                .collect(),
        )
        .expect("relation");
        let stored = StoredSheet {
            name: format!("pages-{rows}"),
            relation,
            state: QueryState::new(),
        };
        let back = StoredSheet::from_binary(stored.to_binary().expect("encode")).expect("decode");
        assert_eq!(back, stored, "rows={rows}");
    }
}

/// §12's corruption-fuzzing harness pointed at the new codec: randomized
/// truncation, bit flips, deletions, zeroed ranges and targeted
/// magic/version/checksum damage must yield typed errors, never panics
/// (a panic would abort the test harness here).
#[test]
fn corrupted_binary_images_never_panic() {
    let sheet = arb_sheet(&mut Rng::seed_from_u64(0xC0FFEE));
    let stored = sheet.save("fuzz").expect("save");
    let bytes = stored.to_binary().expect("encode");
    assert!(StoredSheet::from_binary(bytes.clone()).is_ok());

    let mut rng = Rng::seed_from_u64(0x5EED_B17E);
    for case in 0..600u64 {
        let mut mutated = bytes.clone();
        match case % 4 {
            0 => mutated.truncate(rng.gen_range(0..bytes.len())),
            1 => {
                let at = rng.gen_range(0..bytes.len());
                mutated[at] ^= 1 << (rng.gen_range(0..8u64) as u8);
            }
            2 => {
                let at = rng.gen_range(0..bytes.len());
                mutated.remove(at);
            }
            _ => {
                let at = rng.gen_range(0..bytes.len());
                let len = rng.gen_range(1..64usize).min(bytes.len() - at);
                for b in &mut mutated[at..at + len] {
                    *b = 0;
                }
            }
        }
        // Every outcome must be a Result — decode eagerly so all chunks
        // and the dictionary are visited.
        let _ = StoredSheet::from_binary(mutated);
    }

    // Targeted damage reports recognizable errors.
    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    let err = StoredSheet::from_binary(bad_magic).expect_err("bad magic");
    assert!(err.to_string().contains("magic"), "{err}");

    let mut bad_version = bytes.clone();
    bad_version[4] = 99;
    let err = StoredSheet::from_binary(bad_version).expect_err("bad version");
    assert!(err.to_string().contains("version"), "{err}");

    let mut bad_tail = bytes.clone();
    let n = bad_tail.len();
    bad_tail[n - 1] = b'?';
    let err = StoredSheet::from_binary(bad_tail).expect_err("bad tail");
    assert!(err.to_string().contains("truncated"), "{err}");

    // Flip one payload byte far from the head: the frame CRC catches it.
    let mut bad_payload = bytes.clone();
    let mid = bytes.len() / 2;
    bad_payload[mid] ^= 0xFF;
    let err = StoredSheet::from_binary(bad_payload).expect_err("payload flip");
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("binary sheet"),
        "{msg}"
    );
}

/// The tentpole guarantee: opening reads only head/footer/meta, and a
/// query touching a strict subset of columns loads exactly those
/// columns' chunks.
#[test]
fn paged_open_reads_only_touched_columns() {
    let rows = 70_000usize;
    let relation = Relation::with_rows(
        "wide",
        Schema::of(&[
            ("id", ValueType::Int),
            ("price", ValueType::Int),
            ("qty", ValueType::Int),
            ("tag", ValueType::Str),
            ("score", ValueType::Float),
        ]),
        (0..rows)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Int((i as i64 * 37) % 10_000),
                    Value::Int((i as i64) % 50),
                    Value::from(format!("tag-{}", i % 11)),
                    Value::Float(i as f64 / 7.0),
                ])
            })
            .collect(),
    )
    .expect("wide relation");
    let stored = StoredSheet {
        name: "wide".into(),
        relation: relation.clone(),
        state: QueryState::new(),
    };
    let path = temp_file("lazy");
    stored.save_path(&path).expect("save");
    let file_len = std::fs::metadata(&path).expect("stat").len();

    let paged = PagedSheet::open(&path).expect("open paged");
    assert_eq!(paged.row_count(), rows);
    assert_eq!(paged.schema().len(), 5);
    assert_eq!(paged.columns_loaded(), 0, "open must not load columns");
    let open_bytes = paged.bytes_read();
    assert!(
        open_bytes * 20 < file_len,
        "open read {open_bytes} of {file_len} bytes — not lazy"
    );

    // Predicate and projection both on `price`: exactly one column loads.
    let pred = Expr::col("price").lt(Expr::lit(500));
    let narrow = paged.scan(Some(&pred), &["price"]).expect("scan");
    assert_eq!(paged.columns_loaded(), 1, "scan touched extra columns");
    let after_scan = paged.bytes_read();
    assert!(
        after_scan * 3 < file_len,
        "1-column scan read {after_scan} of {file_len} bytes"
    );

    // Oracle: the same filter over the eager relation.
    let expected: Vec<i64> = relation
        .rows()
        .iter()
        .filter_map(|t| match t.values()[1] {
            Value::Int(p) if p < 500 => Some(p),
            _ => None,
        })
        .collect();
    assert_eq!(narrow.len(), expected.len());
    for (row, want) in narrow.rows().iter().zip(&expected) {
        assert_eq!(row.values()[0], Value::Int(*want));
    }

    // A scan over different columns loads only what it needs.
    let wide_scan = paged
        .scan(Some(&pred), &["id", "tag", "score"])
        .expect("scan wide");
    assert_eq!(wide_scan.len(), expected.len());
    assert_eq!(paged.columns_loaded(), 4, "qty must stay on disk");

    // Full materialization equals the original sheet.
    let materialized = paged.materialize().expect("materialize");
    assert_eq!(materialized, stored);
    assert_eq!(paged.columns_loaded(), 5);

    // Unknown columns are typed errors, not panics.
    assert!(paged.scan(None, &["nope"]).is_err());

    std::fs::remove_file(&path).ok();
}

/// `save` writes binary by default; `open` auto-detects binary vs the
/// JSON compat format from the leading bytes.
#[test]
fn format_auto_detection_routes_both_codecs() {
    let stored = Spreadsheet::over(spreadsheet_algebra::fixtures::used_cars())
        .save("cars")
        .expect("save");

    let bin_path = temp_file("auto_bin");
    stored.save_path(&bin_path).expect("save binary");
    let head = std::fs::read(&bin_path).expect("read")[..4].to_vec();
    assert_eq!(&head, b"SSAB", "binary is the default format");
    assert_eq!(open_sheet(&bin_path).expect("open binary"), stored);
    assert_eq!(StoredSheet::open_path(&bin_path).expect("open"), stored);

    let json_path = temp_file("auto_json");
    save_sheet_json(&stored, &json_path).expect("save json");
    let head = std::fs::read(&json_path).expect("read")[..1].to_vec();
    assert_eq!(head[0], b'{', "compat path is plain JSON");
    assert_eq!(open_sheet(&json_path).expect("open json"), stored);

    // The lazy reader refuses JSON (no paged representation) with a
    // typed error naming the magic check.
    let err = open_paged(&json_path).expect_err("json is not paged");
    assert!(err.to_string().contains("magic"), "{err}");
    let err = SheetFile::open(&json_path).expect_err("json is not binary");
    assert!(err.to_string().contains("magic"), "{err}");

    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&json_path).ok();
}
