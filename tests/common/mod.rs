//! Shared randomized generators for the integration tests, driven by the
//! in-tree [`Rng`] (the workspace builds offline, without a property-test
//! crate). Each test derives its cases from a fixed base seed, so runs are
//! reproducible; on failure, tests print the case seed to replay.

#![allow(dead_code)]

use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::prelude::*;
use ssa_relation::rng::Rng;
use ssa_relation::AggFunc;

pub const COLUMNS: [&str; 6] = ["ID", "Model", "Price", "Year", "Mileage", "Condition"];
pub const NUMERIC_COLUMNS: [&str; 4] = ["ID", "Price", "Year", "Mileage"];

pub fn arb_column(rng: &mut Rng) -> &'static str {
    COLUMNS[rng.gen_range(0..COLUMNS.len())]
}

pub fn arb_numeric_column(rng: &mut Rng) -> &'static str {
    NUMERIC_COLUMNS[rng.gen_range(0..NUMERIC_COLUMNS.len())]
}

pub fn arb_direction(rng: &mut Rng) -> Direction {
    if rng.gen_bool(0.5) {
        Direction::Asc
    } else {
        Direction::Desc
    }
}

pub fn arb_predicate(rng: &mut Rng) -> Expr {
    match rng.gen_range(0..4usize) {
        0 => Expr::col(arb_numeric_column(rng)).lt(Expr::lit(rng.gen_range(13_000..19_000i64))),
        1 => Expr::col(arb_numeric_column(rng)).ge(Expr::lit(rng.gen_range(2004..2008i64))),
        2 => Expr::col("Model").eq(Expr::lit(*rng.pick(&["Jetta", "Civic", "Accord"]))),
        _ => Expr::col("Condition").eq(Expr::lit(*rng.pick(&["Good", "Excellent"]))),
    }
}

/// One random unary operator instance over the used-car columns — the same
/// distribution the proptest-based suite originally drew from.
pub fn arb_op(rng: &mut Rng) -> AlgebraOp {
    match rng.gen_range(0..7usize) {
        0 => AlgebraOp::Select {
            predicate: arb_predicate(rng),
        },
        1 => AlgebraOp::Project {
            column: arb_column(rng).to_string(),
        },
        2 => AlgebraOp::Aggregate {
            func: *rng.pick(&[
                AggFunc::Avg,
                AggFunc::Sum,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Count,
            ]),
            column: arb_numeric_column(rng).to_string(),
            level: rng.gen_range(1..=3usize),
        },
        3 => AlgebraOp::Formula {
            name: Some(rng.pick(&["Fa", "Fb", "Fc"]).to_string()),
            expr: Expr::col(arb_numeric_column(rng)).add(Expr::lit(1)),
        },
        4 => AlgebraOp::Dedup,
        5 => AlgebraOp::Group {
            basis: vec![arb_column(rng).to_string()],
            order: arb_direction(rng),
        },
        _ => AlgebraOp::Order {
            attribute: arb_column(rng).to_string(),
            order: arb_direction(rng),
            level: rng.gen_range(1..=3usize),
        },
    }
}

/// A starting sheet with 0–2 preparatory operators applied (so pairs are
/// tested against grouped/filtered states too). Invalid preparatory steps
/// are simply skipped.
pub fn arb_sheet(rng: &mut Rng) -> Spreadsheet {
    let mut s = Spreadsheet::over(used_cars());
    for _ in 0..rng.gen_range(0..3usize) {
        let _ = arb_op(rng).apply(&mut s);
    }
    s
}
