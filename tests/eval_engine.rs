//! Differential tests for the two evaluation engines.
//!
//! The index-vector engine (default) and the naive row-cloning engine
//! must be observationally identical: same `Derived` (data, tree,
//! visible list) for every state, same errors for every invalid state,
//! and the same results whatever the parallelism threshold. The naive
//! engine is the oracle — it is a direct transcription of the paper's
//! canonical pipeline over whole relations.

mod common;

use common::{arb_op, arb_sheet};
use spreadsheet_algebra::eval::{evaluate_with, EvalOptions};
use spreadsheet_algebra::prelude::*;
use spreadsheet_algebra::{ComputedColumn, QueryState};
use ssa_relation::rng::Rng;
use ssa_relation::schema::Schema;
use ssa_relation::tuple;
use ssa_relation::ValueType::{Int, Str};

const SEED: u64 = 0xE7A1_5EED;

fn naive() -> EvalOptions {
    EvalOptions {
        naive: true,
        ..EvalOptions::default()
    }
}

fn indexed(parallel_threshold: usize) -> EvalOptions {
    EvalOptions {
        naive: false,
        parallel_threshold,
    }
}

/// The oracle check: evaluate one (base, state) pair on both engines and
/// demand identical output (or identical failure).
fn assert_engines_agree(base: &ssa_relation::Relation, state: &QueryState, case: u64) {
    let reference = evaluate_with(base, state, naive());
    for threshold in [usize::MAX, 1] {
        let candidate = evaluate_with(base, state, indexed(threshold));
        match (&reference, &candidate) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "case {case}, threshold {threshold}");
                assert!(a.equivalent(b), "case {case}: equal but not equivalent?");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("case {case}: naive {a:?} vs indexed {b:?}"),
        }
    }
}

#[test]
fn engines_agree_on_random_operator_sequences() {
    for case in 0..80u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ (case << 8));
        let mut sheet = arb_sheet(&mut rng);
        for _ in 0..rng.gen_range(0..5usize) {
            // Invalid operator draws (bad level, non-superset basis…) are
            // skipped, mirroring a user retrying in the UI.
            let _ = arb_op(&mut rng).apply(&mut sheet);
        }
        assert_engines_agree(sheet.base(), sheet.state(), case);
    }
}

/// Random rows over a used-cars-shaped schema, sized to exercise the
/// chunked parallel paths with more than one row per worker.
fn synthetic_cars(rng: &mut Rng, n: usize) -> ssa_relation::Relation {
    let models = ["Jetta", "Civic", "Accord", "Focus"];
    let conditions = ["Good", "Fair", "Excellent"];
    let rows = (0..n)
        .map(|i| {
            tuple![
                i as i64,
                *rng.pick(&models),
                rng.gen_range(8_000..25_000i64),
                rng.gen_range(2000..2009i64),
                rng.gen_range(10_000..120_000i64),
                *rng.pick(&conditions)
            ]
        })
        .collect();
    ssa_relation::Relation::with_rows(
        "cars",
        Schema::of(&[
            ("ID", Int),
            ("Model", Str),
            ("Price", Int),
            ("Year", Int),
            ("Mileage", Int),
            ("Condition", Str),
        ]),
        rows,
    )
    .unwrap()
}

/// A state exercising every stage at once: dedup, formula, aggregate
/// feeding a selection, plain selection, projection, grouping, ordering.
fn full_state() -> QueryState {
    let mut st = QueryState::new();
    st.dedup = true;
    st.spec.levels.push(spreadsheet_algebra::GroupLevel::new(
        ["Model"],
        Direction::Desc,
    ));
    st.spec.levels.push(spreadsheet_algebra::GroupLevel::new(
        ["Year"],
        Direction::Asc,
    ));
    st.spec.finest_order.push(OrderKey::asc("Price"));
    st.computed.push(ComputedColumn::formula(
        "PriceK",
        Expr::col("Price").div(Expr::lit(1000)),
    ));
    st.computed.push(ComputedColumn::aggregate(
        "Avg_Price",
        AggFunc::Avg,
        "Price",
        2,
        vec!["Model".into()],
    ));
    st.add_selection(Expr::col("Price").le(Expr::col("Avg_Price")));
    st.add_selection(Expr::col("Year").ge(Expr::lit(2002)));
    st.projected_out.insert("Condition".into());
    st
}

#[test]
fn engines_agree_on_bulk_synthetic_data() {
    let mut rng = Rng::seed_from_u64(SEED ^ 0xB01D);
    let base = synthetic_cars(&mut rng, 4096);
    assert_engines_agree(&base, &full_state(), 0xB01D);
}

#[test]
fn parallel_threshold_is_invisible() {
    // Sequential vs fully-chunked index-vector evaluation: bit-identical.
    let mut rng = Rng::seed_from_u64(SEED ^ 0xC0DE);
    let base = synthetic_cars(&mut rng, 2048);
    let st = full_state();
    let sequential = evaluate_with(&base, &st, indexed(usize::MAX)).unwrap();
    let parallel = evaluate_with(&base, &st, indexed(1)).unwrap();
    assert_eq!(sequential, parallel);

    // And on small random sheets drawn from the operator generators.
    for case in 0..30u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ 0xD00D ^ (case << 8));
        let sheet = arb_sheet(&mut rng);
        let a = evaluate_with(sheet.base(), sheet.state(), indexed(usize::MAX));
        let b = evaluate_with(sheet.base(), sheet.state(), indexed(1));
        assert_eq!(a, b, "case {case}");
    }
}

/// String-heavy relation: four of six columns are strings, and comments
/// are mostly distinct, so the interned representation gets no help from
/// a handful of repeated values. Mirrors `ssa_bench::synthetic_listings`.
fn synthetic_listings(rng: &mut Rng, n: usize) -> ssa_relation::Relation {
    let models = ["Jetta", "Civic", "Accord", "Focus", "Corolla", "Passat"];
    let cities = ["Ann Arbor", "Ypsilanti", "Detroit", "Lansing", "Marquette"];
    let adjectives = ["excellent", "good", "fair", "rough"];
    let rows = (0..n)
        .map(|i| {
            let model = *rng.pick(&models);
            tuple![
                i as i64,
                model,
                format!("Dealer #{:03}", rng.gen_range(0..200usize)),
                *rng.pick(&cities),
                format!(
                    "{} condition {} — odo check {} (listing {})",
                    rng.pick(&adjectives),
                    model,
                    rng.gen_range(10_000..160_000i64),
                    i
                ),
                rng.gen_range(4_000..30_000i64)
            ]
        })
        .collect();
    ssa_relation::Relation::with_rows(
        "listings",
        Schema::of(&[
            ("ID", Int),
            ("Model", Str),
            ("Dealer", Str),
            ("City", Str),
            ("Comment", Str),
            ("Price", Int),
        ]),
        rows,
    )
    .unwrap()
}

/// The string-heavy counterpart of [`full_state`]: grouping, ordering,
/// aggregation, dedup and selection all keyed on string columns.
fn string_state() -> QueryState {
    let mut st = QueryState::new();
    st.dedup = true;
    st.spec.levels.push(spreadsheet_algebra::GroupLevel::new(
        ["Model"],
        Direction::Desc,
    ));
    st.spec.levels.push(spreadsheet_algebra::GroupLevel::new(
        ["City"],
        Direction::Asc,
    ));
    st.spec.finest_order.push(OrderKey::asc("Dealer"));
    st.spec.finest_order.push(OrderKey::asc("Comment"));
    st.computed.push(ComputedColumn::aggregate(
        "Best_Comment",
        AggFunc::Max,
        "Comment",
        2,
        vec!["Model".into()],
    ));
    st.add_selection(Expr::col("City").cmp(ssa_relation::CmpOp::Ne, Expr::lit("Marquette")));
    st
}

#[test]
fn engines_agree_on_string_heavy_data() {
    let mut rng = Rng::seed_from_u64(SEED ^ 0x57F1);
    let base = synthetic_listings(&mut rng, 3000);
    assert_engines_agree(&base, &string_state(), 0x57F1);
}

/// Random operator sequences whose selections, groupings, orderings and
/// aggregates all target string columns, differentially checked against
/// the naive oracle — the interning-specific analogue of
/// [`engines_agree_on_random_operator_sequences`].
#[test]
fn engines_agree_on_random_string_ops() {
    const STR_COLS: [&str; 4] = ["Model", "Dealer", "City", "Comment"];
    for case in 0..40u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ 0x5AFE ^ (case << 8));
        let n = rng.gen_range(40..300usize);
        let base = synthetic_listings(&mut rng, n);
        let mut st = QueryState::new();
        st.dedup = rng.gen_bool(0.4);
        if rng.gen_bool(0.7) {
            st.spec.levels.push(spreadsheet_algebra::GroupLevel::new(
                [*rng.pick(&STR_COLS[..3])],
                if rng.gen_bool(0.5) {
                    Direction::Asc
                } else {
                    Direction::Desc
                },
            ));
        }
        let key = *rng.pick(&STR_COLS);
        st.spec.finest_order.push(if rng.gen_bool(0.5) {
            OrderKey::asc(key)
        } else {
            OrderKey::desc(key)
        });
        if rng.gen_bool(0.6) {
            st.computed.push(ComputedColumn::aggregate(
                "Agg",
                *rng.pick(&[AggFunc::Min, AggFunc::Max, AggFunc::Count]),
                *rng.pick(&STR_COLS),
                1,
                vec![],
            ));
        }
        if rng.gen_bool(0.7) {
            let op = if rng.gen_bool(0.5) {
                ssa_relation::CmpOp::Eq
            } else {
                ssa_relation::CmpOp::Ne
            };
            st.add_selection(
                Expr::col("City").cmp(op, Expr::lit(*rng.pick(&["Detroit", "Lansing", "Nowhere"]))),
            );
        }
        assert_engines_agree(&base, &st, case);
    }
}

#[test]
fn engines_agree_on_invalid_states() {
    let base = spreadsheet_algebra::fixtures::used_cars();

    // Unknown column in a selection.
    let mut st = QueryState::new();
    st.add_selection(Expr::col("Ghost").gt(Expr::lit(0)));
    assert_eq!(
        evaluate_with(&base, &st, naive()).unwrap_err(),
        evaluate_with(&base, &st, indexed(usize::MAX)).unwrap_err(),
    );

    // Cyclic computed column.
    let mut st = QueryState::new();
    st.computed.push(ComputedColumn::formula(
        "Loop",
        Expr::col("Loop").add(Expr::lit(1)),
    ));
    assert_eq!(
        evaluate_with(&base, &st, naive()).unwrap_err(),
        evaluate_with(&base, &st, indexed(usize::MAX)).unwrap_err(),
    );

    // Numeric aggregate over a string column fails in both engines.
    let mut st = QueryState::new();
    st.computed.push(ComputedColumn::aggregate(
        "Bad",
        AggFunc::Sum,
        "Model",
        1,
        vec![],
    ));
    assert!(evaluate_with(&base, &st, naive()).is_err());
    assert!(evaluate_with(&base, &st, indexed(usize::MAX)).is_err());
}

#[test]
fn sheet_engine_toggle_produces_identical_views() {
    for case in 0..20u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ 0xFACE ^ (case << 8));
        let mut sheet = arb_sheet(&mut rng);
        let indexed_view = sheet.view().unwrap().clone();
        sheet.set_naive_eval(true);
        let naive_view = sheet.view().unwrap().clone();
        assert_eq!(indexed_view, naive_view, "case {case}");
        sheet.set_naive_eval(false);
        assert_eq!(sheet.view().unwrap(), &indexed_view, "case {case}");
    }
}
