//! Differential tests for the delta-aware cache (DESIGN.md §10).
//!
//! A spreadsheet whose cache is patched incrementally (narrowed
//! selections, appended/removed computed columns, projection toggles)
//! must be observationally identical to a fresh evaluation of the same
//! (base, state) pair on the full indexed engine *and* on the naive
//! oracle — including the edits that must fall back (widened predicates,
//! rank-crossing selections over aggregates, dedup toggles).

mod common;

use common::{arb_column, arb_numeric_column, arb_op, arb_predicate};
use spreadsheet_algebra::eval::{evaluate_with, EvalOptions};
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::prelude::*;
use spreadsheet_algebra::StateDelta;
use ssa_relation::rng::Rng;

const SEED: u64 = 0xD3_17A5;

fn naive() -> EvalOptions {
    EvalOptions {
        naive: true,
        ..EvalOptions::default()
    }
}

/// The oracle check: the incrementally maintained view must equal a
/// from-scratch evaluation on both engines (or fail alongside them).
fn assert_incremental_agrees(sheet: &mut Spreadsheet, context: &str) {
    let reference = evaluate_with(sheet.base(), sheet.state(), naive());
    let full_indexed = evaluate_with(sheet.base(), sheet.state(), sheet.eval_options());
    let incremental = sheet.view().cloned();
    match (&incremental, &reference) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "{context}: incremental vs naive oracle");
            assert!(a.equivalent(b), "{context}: equal but not equivalent?");
            let c = full_indexed.expect("naive succeeded, indexed must too");
            assert_eq!(a, &c, "{context}: incremental vs full indexed");
        }
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{context}: incremental {a:?} vs naive {b:?}"),
    }
}

/// One random state edit biased towards the delta-classified paths.
/// Invalid draws (unknown ids, dependent columns…) are skipped, like a
/// user retrying in the UI.
fn arb_edit(rng: &mut Rng, sheet: &mut Spreadsheet) {
    match rng.gen_range(0..12usize) {
        // Narrow: add a fresh selection.
        0 | 1 => {
            let _ = sheet.select(arb_predicate(rng));
        }
        // Narrow: tighten an existing predicate by conjunction.
        2 => {
            let sels: Vec<(u64, Expr)> = sheet
                .state()
                .selections
                .iter()
                .map(|s| (s.id, s.predicate.clone()))
                .collect();
            if !sels.is_empty() {
                let (id, pred) = sels[rng.gen_range(0..sels.len())].clone();
                let _ = sheet.replace_selection(id, pred.and(arb_predicate(rng)));
            }
        }
        // Fallback: replace with an unrelated (usually wider) predicate.
        3 => {
            let ids: Vec<u64> = sheet.state().selections.iter().map(|s| s.id).collect();
            if !ids.is_empty() {
                let id = ids[rng.gen_range(0..ids.len())];
                let _ = sheet.replace_selection(id, arb_predicate(rng));
            }
        }
        // Fallback: remove a selection (widening).
        4 => {
            let ids: Vec<u64> = sheet.state().selections.iter().map(|s| s.id).collect();
            if !ids.is_empty() {
                let _ = sheet.remove_selection(ids[rng.gen_range(0..ids.len())]);
            }
        }
        // Visible-only: toggle a base column's projection.
        5 => {
            let col = arb_column(rng);
            if sheet.state().projected_out.contains(col) {
                let _ = sheet.reinstate(col);
            } else {
                let _ = sheet.project_out(col);
            }
        }
        // Append: an aggregate at a random level.
        6 => {
            let _ = sheet.aggregate(
                *rng.pick(&[AggFunc::Avg, AggFunc::Sum, AggFunc::Min, AggFunc::Count]),
                arb_numeric_column(rng),
                rng.gen_range(1..=3usize),
            );
        }
        // Append: a formula, sometimes chained onto a computed column
        // (making it volatile when the source is an aggregate).
        7 => {
            let computed: Vec<String> = sheet
                .state()
                .computed
                .iter()
                .map(|c| c.name.clone())
                .collect();
            let src = if !computed.is_empty() && rng.gen_bool(0.5) {
                computed[rng.gen_range(0..computed.len())].clone()
            } else {
                arb_numeric_column(rng).to_string()
            };
            let _ = sheet.formula(None, Expr::col(src).add(Expr::lit(1)));
        }
        // Remove a computed column (refused while depended upon).
        8 => {
            let computed: Vec<String> = sheet
                .state()
                .computed
                .iter()
                .map(|c| c.name.clone())
                .collect();
            if !computed.is_empty() {
                let _ = sheet.remove_computed(&computed[rng.gen_range(0..computed.len())]);
            }
        }
        // Fallback: a rank-crossing selection over a computed column.
        9 => {
            let computed: Vec<String> = sheet
                .state()
                .computed
                .iter()
                .map(|c| c.name.clone())
                .collect();
            if !computed.is_empty() {
                let col = computed[rng.gen_range(0..computed.len())].clone();
                let _ = sheet.select(Expr::col(col).ge(Expr::lit(0)));
            }
        }
        // Fallback: dedup toggle (on only; there is no off operator).
        10 => {
            let _ = sheet.dedup();
        }
        // Reorganize: grouping/ordering (and whatever else arb_op draws).
        _ => {
            let _ = arb_op(rng).apply(sheet);
        }
    }
}

#[test]
fn incremental_equals_oracle_on_random_edit_sequences() {
    for case in 0..60u64 {
        for threshold in [usize::MAX, 1] {
            let mut rng = Rng::seed_from_u64(SEED ^ (case << 8) ^ threshold as u64);
            let mut sheet = Spreadsheet::over(used_cars());
            sheet.set_parallel_threshold(threshold);
            // Warm the cache so every subsequent edit diffs against it.
            sheet.view().expect("base sheet evaluates");
            for step in 0..rng.gen_range(3..9usize) {
                arb_edit(&mut rng, &mut sheet);
                // Occasionally skip the view so deltas compound before
                // the next classification.
                if rng.gen_bool(0.25) {
                    continue;
                }
                assert_incremental_agrees(
                    &mut sheet,
                    &format!("case {case}, threshold {threshold}, step {step}"),
                );
            }
            assert_incremental_agrees(
                &mut sheet,
                &format!("case {case}, threshold {threshold}, final"),
            );
        }
    }
}

#[test]
fn incremental_ablation_produces_identical_views() {
    // The same edit script through an incremental and a non-incremental
    // sheet must produce identical views at every step.
    for case in 0..20u64 {
        let mut rng_a = Rng::seed_from_u64(SEED ^ (case << 16));
        let mut rng_b = Rng::seed_from_u64(SEED ^ (case << 16));
        let mut inc = Spreadsheet::over(used_cars());
        let mut full = Spreadsheet::over(used_cars());
        full.set_incremental(false);
        full.set_fast_reorganize(false);
        inc.view().unwrap();
        full.view().unwrap();
        for step in 0..6 {
            arb_edit(&mut rng_a, &mut inc);
            arb_edit(&mut rng_b, &mut full);
            let a = inc.view().cloned();
            let b = full.view().cloned();
            match (&a, &b) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case} step {step}"),
                (Err(_), Err(_)) => {}
                _ => panic!("case {case} step {step}: {a:?} vs {b:?}"),
            }
        }
    }
}

fn arranged() -> Spreadsheet {
    let mut s = Spreadsheet::over(used_cars());
    s.group(&["Model"], Direction::Asc).unwrap();
    s.order("Price", Direction::Asc, 2).unwrap();
    s
}

#[test]
fn tighten_selection_classifies_narrow() {
    let mut s = arranged();
    let id = s.select(Expr::col("Price").lt(Expr::lit(20_000))).unwrap();
    s.view().unwrap();
    s.replace_selection(id, Expr::col("Price").lt(Expr::lit(15_000)))
        .unwrap();
    assert_eq!(
        s.last_delta(),
        &StateDelta::Narrow {
            predicates: vec![Expr::col("Price").lt(Expr::lit(15_000))]
        }
    );
    assert_incremental_agrees(&mut s, "tighten");
}

#[test]
fn add_selection_recomputes_aggregates_over_narrowed_multiset() {
    let mut s = arranged();
    let avg = s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    s.view().unwrap();
    s.select(Expr::col("Year").ge(Expr::lit(2004))).unwrap();
    assert!(
        matches!(s.last_delta(), StateDelta::Narrow { .. }),
        "selection on a base column narrows even while {avg} exists"
    );
    assert_incremental_agrees(&mut s, "narrow with aggregate");
}

#[test]
fn selection_on_aggregate_falls_back() {
    let mut s = arranged();
    let avg = s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    s.view().unwrap();
    s.select(Expr::col(&avg).ge(Expr::lit(10_000))).unwrap();
    assert_eq!(
        s.last_delta(),
        &StateDelta::Full {
            reason: "a selection reads an aggregate-dependent column"
        }
    );
    assert_incremental_agrees(&mut s, "rank-crossing");
}

#[test]
fn narrow_re_sorts_when_order_key_is_volatile() {
    // Rows ordered by squared distance from the whole-sheet average
    // price: narrowing moves the average, which permutes the order even
    // though the spec itself never changed. The cache must detect the
    // volatile order key and re-sort instead of keeping the stale
    // presentation order. Prices chosen so the survivors' relative
    // order actually flips: before the tighten the distances rank them
    // [36, 20, 10, 100]; after `Price < 50` the mean drops to 22 and
    // the ranking becomes [20, 10, 36].
    let rel = ssa_relation::Relation::with_rows(
        "t",
        ssa_relation::schema::Schema::of(&[
            ("ID", ssa_relation::ValueType::Int),
            ("Price", ssa_relation::ValueType::Int),
        ]),
        vec![
            ssa_relation::tuple![1, 10],
            ssa_relation::tuple![2, 20],
            ssa_relation::tuple![3, 36],
            ssa_relation::tuple![4, 100],
        ],
    )
    .unwrap();
    let mut s = Spreadsheet::over(rel);
    let avg = s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
    let dist = Expr::col("Price").sub(Expr::col(&avg));
    let dist2 = dist.clone().mul(dist);
    s.formula(Some("Dist"), dist2).unwrap();
    s.order("Dist", Direction::Asc, 1).unwrap();
    s.view().unwrap();
    s.select(Expr::col("Price").lt(Expr::lit(50))).unwrap();
    assert!(
        matches!(s.last_delta(), StateDelta::Narrow { .. }),
        "a base-column selection narrows even though the order key is volatile"
    );
    assert_incremental_agrees(&mut s, "volatile order key");
}

#[test]
fn widened_selection_falls_back() {
    let mut s = arranged();
    let id = s.select(Expr::col("Price").lt(Expr::lit(15_000))).unwrap();
    s.view().unwrap();
    s.replace_selection(id, Expr::col("Price").lt(Expr::lit(20_000)))
        .unwrap();
    assert_eq!(
        s.last_delta(),
        &StateDelta::Full {
            reason: "a selection was widened or is incomparable"
        }
    );
    assert_incremental_agrees(&mut s, "widen");
}

#[test]
fn projection_toggle_is_reorganize_only() {
    let mut s = arranged();
    s.view().unwrap();
    s.project_out("Mileage").unwrap();
    assert_eq!(s.last_delta(), &StateDelta::Reorganize);
    assert_incremental_agrees(&mut s, "project out");
    s.reinstate("Mileage").unwrap();
    assert_eq!(s.last_delta(), &StateDelta::Reorganize);
    assert_incremental_agrees(&mut s, "reinstate");
}

#[test]
fn append_and_remove_computed_classify() {
    let mut s = arranged();
    s.view().unwrap();
    let name = s
        .formula(Some("Markup"), Expr::col("Price").mul(Expr::lit(2)))
        .unwrap();
    assert_eq!(
        s.last_delta(),
        &StateDelta::AppendComputed { name: name.clone() }
    );
    assert_incremental_agrees(&mut s, "append");
    s.remove_computed(&name).unwrap();
    assert_eq!(s.last_delta(), &StateDelta::RemoveComputed { name });
    assert_incremental_agrees(&mut s, "remove");
}

#[test]
fn dedup_toggle_falls_back() {
    let mut s = arranged();
    s.view().unwrap();
    s.dedup().unwrap();
    assert_eq!(
        s.last_delta(),
        &StateDelta::Full {
            reason: "duplicate elimination toggled"
        }
    );
    assert_incremental_agrees(&mut s, "dedup");
}

#[test]
fn cascade_removal_bypassing_invalidate_stays_correct() {
    // remove_with_cascade edits the state through raw access (several
    // edits per view); classification happens inside view, so the result
    // must still match a fresh evaluation.
    let mut s = arranged();
    let avg = s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    s.order(&avg, Direction::Desc, 2).unwrap();
    s.select(Expr::col(&avg).ge(Expr::lit(0))).unwrap();
    s.view().unwrap();
    s.remove_with_cascade(&avg).unwrap();
    assert_incremental_agrees(&mut s, "cascade removal");
}

#[test]
fn narrowing_keeps_rank_cache_usable_for_reorganize() {
    // Sort by Year (populating the rank cache), narrow, then re-sort by
    // Mileage and flip directions: the filtered rank vectors must still
    // order correctly.
    let mut s = arranged();
    s.view().unwrap();
    s.select(Expr::col("Price").lt(Expr::lit(18_000))).unwrap();
    s.view().unwrap();
    s.order("Mileage", Direction::Desc, 2).unwrap();
    assert_incremental_agrees(&mut s, "reorder after narrow");
    s.order("Mileage", Direction::Asc, 2).unwrap();
    assert_incremental_agrees(&mut s, "flip after narrow");
}
