//! Cross-crate end-to-end flows: CSV → catalog → session → script →
//! algebra → render, stored-sheet persistence, and the study smoke path.

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::StoredSheet;
use ssa_relation::csv::{parse_csv, to_csv};

const INVENTORY_CSV: &str = "\
SKU,Category,Price,Stock
A1,widget,19.5,100
A2,widget,25.0,40
B1,gadget,99.9,7
B2,gadget,45.0,0
C1,gizmo,5.25,500
";

#[test]
fn csv_to_spreadsheet_to_render() {
    let rel = parse_csv("inventory", INVENTORY_CSV).expect("CSV parses");
    let mut sheet = Spreadsheet::over(rel);
    sheet.group(&["Category"], Direction::Asc).unwrap();
    let avg = sheet.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    sheet.select(Expr::col("Stock").gt(Expr::lit(0))).unwrap();
    let view = sheet.view().unwrap();
    assert_eq!(view.len(), 4);
    let text = spreadsheet_algebra::render::render_table(view);
    assert!(text.contains(&avg));
    assert!(text.contains("gadget"));
    // export the visible view back to CSV and re-import
    let exported = to_csv(&view.visible_relation().unwrap());
    let back = parse_csv("roundtrip", &exported).unwrap();
    assert_eq!(back.len(), 4);
    assert!(back.schema().contains("Avg_Price"));
}

#[test]
fn script_session_full_cycle_with_csv_data() {
    let mut catalog = Catalog::new();
    catalog
        .register(parse_csv("inventory", INVENTORY_CSV).unwrap())
        .unwrap();
    let mut host = ScriptHost::new(Session::new(catalog));
    let outputs = host
        .run_script(
            "load inventory\n\
             group Category\n\
             agg sum Stock 2\n\
             select Sum_Stock > 5\n\
             formula Value = Price * Stock\n\
             order Value desc 2\n\
             show",
        )
        .unwrap();
    let table = outputs.last().unwrap();
    assert!(table.contains("Value"));
    // gadgets: stock 7 total → kept; widgets 140 → kept; gizmo 500 → kept
    assert!(table.contains("gizmo"));
}

#[test]
fn stored_sheet_survives_json_round_trip_across_sessions() {
    // Session 1: build and save a sheet with state.
    let mut catalog = Catalog::new();
    catalog.register(used_cars()).unwrap();
    let mut session = Session::new(catalog);
    session.load("cars").unwrap();
    {
        let e = session.engine().unwrap();
        e.select(Expr::col("Condition").eq(Expr::lit("Excellent")))
            .unwrap();
        e.group_add(&["Model"], Direction::Asc).unwrap();
        e.aggregate(AggFunc::Max, "Price", 2).unwrap();
    }
    let stored = session.engine().unwrap().save("excellent").unwrap();
    let json = stored.to_json().unwrap();

    // "Session 2": deserialize and reopen.
    let revived = StoredSheet::from_json(&json).unwrap();
    let mut sheet = Spreadsheet::open(&revived).unwrap();
    let view = sheet.view().unwrap();
    assert_eq!(view.len(), 4); // four Excellent cars (all Jettas)
    assert!(view.data.schema().contains("Max_Price"));
    // grouping survived
    assert_eq!(view.tree.groups_at_level(2).len(), 1); // all Jetta
}

#[test]
fn two_sheets_diff_then_union_is_identity_as_multiset() {
    let mut catalog = Catalog::new();
    catalog.register(used_cars()).unwrap();
    let mut session = Session::new(catalog);
    session.load("cars").unwrap();
    session
        .engine()
        .unwrap()
        .select(Expr::col("Year").eq(Expr::lit(2005)))
        .unwrap();
    session.save("y2005").unwrap();

    session.load("cars").unwrap();
    session.difference("y2005").unwrap();
    session.save("rest").unwrap();

    // (cars − y2005) ∪ y2005 == cars as a multiset
    session.open("rest").unwrap();
    session.union("y2005").unwrap();
    let view = session.engine().unwrap().view().unwrap();
    assert_eq!(view.len(), 9);
    assert!(view.visible_relation().unwrap().multiset_eq(&used_cars()));
}

#[test]
fn study_smoke_end_to_end() {
    use sheetmusiq_repro::study::{run_study, StudyConfig, Tool};
    let result = run_study(&StudyConfig {
        seed: 7,
        scale: 0.02,
        verify_system: true,
    });
    assert_eq!(result.runs.len(), 200);
    // direction of the headline results holds for an arbitrary seed
    assert!(result.total_correct(Tool::SheetMusiq) > result.total_correct(Tool::VisualBuilder));
}

#[test]
fn base_relation_update_reflects_in_existing_sheet() {
    // Sec. II-B: tuples in R can change anytime; the spreadsheet always
    // retrieves the latest data (here: rebuild the sheet over the updated
    // catalog entry, keeping the state).
    let mut catalog = Catalog::new();
    catalog.register(used_cars()).unwrap();
    let mut sheet = Spreadsheet::over(catalog.get("cars").unwrap().clone());
    sheet.aggregate(AggFunc::Count, "ID", 1).unwrap();
    assert_eq!(
        sheet.view().unwrap().data.value_at(0, "Count_ID").unwrap(),
        &Value::Int(9)
    );
    // a new car arrives
    catalog
        .append_rows(
            "cars",
            vec![ssa_relation::tuple![
                999, "Jetta", 14000, 2007, 10_000, "Good"
            ]],
        )
        .unwrap();
    // computed columns auto-update over the refreshed base
    let mut refreshed = Spreadsheet::over(catalog.get("cars").unwrap().clone());
    refreshed.aggregate(AggFunc::Count, "ID", 1).unwrap();
    assert_eq!(
        refreshed
            .view()
            .unwrap()
            .data
            .value_at(0, "Count_ID")
            .unwrap(),
        &Value::Int(10)
    );
}

#[test]
fn contextual_menu_through_session() {
    use sheetmusiq_repro::musiq::{context_menu, ClickTarget, MenuEntry};
    let mut catalog = Catalog::new();
    catalog.register(used_cars()).unwrap();
    let mut session = Session::new(catalog);
    session.load("cars").unwrap();
    session.save("snapshot").unwrap();
    let stored_count = session.stored_names().len();
    let entries = context_menu(
        session.engine().unwrap().sheet(),
        &ClickTarget::Header {
            column: "Price".into(),
        },
        stored_count,
    )
    .unwrap();
    assert!(entries
        .iter()
        .any(|e| matches!(e, MenuEntry::BinaryOps { stored_sheets: 1 })));
}
