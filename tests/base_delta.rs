//! Differential tests for streaming base-data deltas (DESIGN.md §14).
//!
//! A spreadsheet whose cached evaluation is patched in place on base
//! appends, deletes and cell updates must stay observationally identical
//! — bitwise, including presentation order — to a from-scratch naive
//! evaluation of the same (base, state) pair, across arbitrary
//! interleavings of base edits and query edits. The audit hook is on by
//! default in debug builds, so every patch below is additionally
//! recompute-checked inside the library itself.

mod common;

use common::{arb_op, arb_predicate};
use spreadsheet_algebra::eval::{evaluate_with, EvalOptions};
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::prelude::*;
use spreadsheet_algebra::StateDelta;
use ssa_relation::rng::Rng;
use ssa_relation::{tuple, Tuple, Value};

const SEED: u64 = 0xBA5E_DE17A;

fn naive() -> EvalOptions {
    EvalOptions {
        naive: true,
        ..EvalOptions::default()
    }
}

/// The oracle check: the maintained view equals a fresh naive evaluation
/// of the sheet's current (base, state) — same rows, same order.
fn assert_agrees(sheet: &mut Spreadsheet, context: &str) {
    let reference = evaluate_with(sheet.base(), sheet.state(), naive());
    let maintained = sheet.view().cloned();
    match (&maintained, &reference) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "{context}: maintained view vs naive oracle");
            assert!(a.equivalent(b), "{context}: equal but not equivalent?");
        }
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{context}: maintained {a:?} vs naive {b:?}"),
    }
}

/// A fresh used-cars-shaped row. IDs are drawn from a disjoint range so
/// appended rows are distinguishable from the fixture's.
fn arb_row(rng: &mut Rng) -> Tuple {
    tuple![
        rng.gen_range(1000..9999i64),
        *rng.pick(&["Jetta", "Civic", "Accord", "Beetle"]),
        rng.gen_range(4_000..25_000i64),
        rng.gen_range(1999..2008i64),
        rng.gen_range(10_000..160_000i64),
        *rng.pick(&["Good", "Excellent", "Fair"])
    ]
}

/// One random base-data edit. Appends dominate (they are the streaming
/// case); deletes and updates address random base positions.
fn arb_base_edit(rng: &mut Rng, sheet: &mut Spreadsheet) {
    let len = sheet.base().len();
    match rng.gen_range(0..6usize) {
        0 | 1 => {
            let rows: Vec<Tuple> = (0..rng.gen_range(1..4usize))
                .map(|_| arb_row(rng))
                .collect();
            sheet.append_rows(rows).expect("append");
        }
        2 => {
            if len > 3 {
                let ids: Vec<u32> = (0..rng.gen_range(1..3usize))
                    .map(|_| rng.gen_range(0..len) as u32)
                    .collect();
                sheet.delete_rows(&ids).expect("delete");
            }
        }
        3 => {
            if len > 0 {
                let _ = sheet.delete_where(&arb_predicate(rng));
            }
        }
        4 => {
            if len > 0 {
                let row = rng.gen_range(0..len) as u32;
                let (col, val) = match rng.gen_range(0..3usize) {
                    0 => ("Price", Value::Int(rng.gen_range(4_000..25_000i64))),
                    1 => (
                        "Model",
                        Value::str(*rng.pick(&["Jetta", "Civic", "Accord"])),
                    ),
                    _ => ("Year", Value::Int(rng.gen_range(1999..2008i64))),
                };
                sheet.update_cell(row, col, val).expect("update");
            }
        }
        _ => {
            if len > 0 {
                // Mileage drives nothing in most drawn states: exercises
                // the in-place (Tier A) update path.
                let row = rng.gen_range(0..len) as u32;
                sheet
                    .update_cell(
                        row,
                        "Mileage",
                        Value::Int(rng.gen_range(10_000..160_000i64)),
                    )
                    .expect("update mileage");
            }
        }
    }
}

#[test]
fn base_edits_equal_oracle_on_random_interleavings() {
    for case in 0..40u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ (case << 8));
        let mut sheet = Spreadsheet::over(used_cars());
        // Warm the cache so the first base edit patches rather than
        // evaluates from scratch.
        sheet.view().expect("base sheet evaluates");
        for step in 0..rng.gen_range(4..10usize) {
            // Interleave: ~half base-data edits, ~half query edits (the
            // latter may fail and be skipped, like a user retrying).
            if rng.gen_bool(0.5) {
                arb_base_edit(&mut rng, &mut sheet);
            } else {
                let _ = arb_op(&mut rng).apply(&mut sheet);
            }
            assert_agrees(&mut sheet, &format!("case {case}, step {step}"));
        }
    }
}

#[test]
fn base_edit_ablation_produces_identical_views() {
    // The same interleaved script through a patching sheet and a
    // non-incremental sheet must produce identical views at every step.
    for case in 0..15u64 {
        let mut rng_a = Rng::seed_from_u64(SEED ^ (case << 16));
        let mut rng_b = Rng::seed_from_u64(SEED ^ (case << 16));
        let mut inc = Spreadsheet::over(used_cars());
        let mut full = Spreadsheet::over(used_cars());
        full.set_incremental(false);
        inc.view().unwrap();
        full.view().unwrap();
        for step in 0..6 {
            // Keep the twin generators in lockstep: both must consume
            // the branch draw.
            let base_edit = rng_a.gen_bool(0.5);
            assert_eq!(base_edit, rng_b.gen_bool(0.5));
            if base_edit {
                arb_base_edit(&mut rng_a, &mut inc);
                arb_base_edit(&mut rng_b, &mut full);
            } else {
                let _ = arb_op(&mut rng_a).apply(&mut inc);
                let _ = arb_op(&mut rng_b).apply(&mut full);
            }
            assert_eq!(
                inc.view().unwrap(),
                full.view().unwrap(),
                "case {case} step {step}"
            );
        }
    }
}

fn arranged() -> Spreadsheet {
    let mut s = Spreadsheet::over(used_cars());
    s.group(&["Model"], Direction::Asc).unwrap();
    s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    s.order("Price", Direction::Asc, 2).unwrap();
    s.view().unwrap();
    s
}

/// Pinned case: an appended row whose grouping key falls strictly
/// between two existing groups must open a fresh group at the right
/// position — merge-inserted into the group tree, not appended at the
/// tail or absorbed into a neighbour.
#[test]
fn append_opens_new_group_between_existing_groups() {
    let mut s = arranged();
    // "Civic" < "Ford" < "Jetta": the new group lands in the middle.
    s.append_row(tuple![555, "Ford", 9_000, 2001, 120_000, "Fair"])
        .unwrap();
    assert_eq!(s.last_delta(), &StateDelta::RowsAppended { count: 1 });
    let view = s.view().unwrap();
    let models: Vec<Value> = (0..view.len())
        .map(|i| *view.data.value_at(i, "Model").unwrap())
        .collect();
    assert_eq!(
        models,
        ["Civic", "Civic", "Civic", "Ford", "Jetta", "Jetta", "Jetta", "Jetta", "Jetta", "Jetta"]
            .map(Value::str)
            .to_vec(),
        "the Ford group must sit between Civic and Jetta"
    );
    // The singleton group's aggregate is its own price.
    assert_eq!(
        view.data.value_at(3, "Avg_Price").unwrap(),
        &Value::Float(9_000.0)
    );
    assert_agrees(&mut s, "new group between groups");
}

/// Pinned case: deleting the only row of a group must close the group;
/// updating a grouping key must move the row across groups.
#[test]
fn delete_closes_group_and_update_moves_across_groups() {
    let mut s = arranged();
    s.append_row(tuple![555, "Ford", 9_000, 2001, 120_000, "Fair"])
        .unwrap();
    // Kill the singleton Ford group (base position 9, the appended row).
    s.delete_rows(&[9]).unwrap();
    assert_eq!(s.last_delta(), &StateDelta::RowsDeleted { count: 1 });
    assert_agrees(&mut s, "singleton group closed");

    // Move a Civic (base row 6, ID 132) into the Jetta group.
    s.update_cell(6, "Model", Value::str("Jetta")).unwrap();
    assert_eq!(s.last_delta(), &StateDelta::CellsUpdated { count: 1 });
    let view = s.view().unwrap();
    let models: Vec<Value> = (0..view.len())
        .map(|i| *view.data.value_at(i, "Model").unwrap())
        .collect();
    assert_eq!(
        models.iter().filter(|m| **m == Value::str("Jetta")).count(),
        7,
        "the moved row must count as a Jetta"
    );
    assert_agrees(&mut s, "row moved across groups");
}
