//! Theorem 2, property-tested: whenever [`may_commute`] approves a pair
//! of unary operator instances, applying them in either order yields the
//! *identical* evaluated spreadsheet (data, grouping tree, and visible
//! columns).
//!
//! The generator draws from every unary operator of the algebra —
//! selection, projection, aggregation, formula computation, duplicate
//! elimination, grouping and ordering — over the paper's used-car data.

mod common;

use common::{arb_op, arb_sheet};
use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::{may_commute, AlgebraOp, SheetError};
use ssa_relation::rng::Rng;

type Outcome = Result<spreadsheet_algebra::Derived, SheetError>;

fn run(sheet: &Spreadsheet, first: &AlgebraOp, second: &AlgebraOp) -> Outcome {
    let mut s = sheet.clone();
    first.apply(&mut s)?;
    second.apply(&mut s)?;
    s.evaluate_now()
}

#[test]
fn theorem2_commuting_pairs_agree() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x7E02 ^ case);
        let sheet = arb_sheet(&mut rng);
        let a = arb_op(&mut rng);
        let b = arb_op(&mut rng);
        if may_commute(&a, &b, &sheet) {
            let ab = run(&sheet, &a, &b);
            let ba = run(&sheet, &b, &a);
            match (ab, ba) {
                (Ok(x), Ok(y)) => assert!(
                    x.equivalent(&y),
                    "case {case}: approved pair produced different sheets: {a} / {b}"
                ),
                // An approved pair must at least fail identically in both
                // orders (e.g. an aggregate level that does not exist).
                (Err(_), Err(_)) => {}
                (x, y) => panic!(
                    "case {case}: approved pair {a} / {b} succeeded in one order only: \
                     {:?} vs {:?}",
                    x.is_ok(),
                    y.is_ok()
                ),
            }
        }
    }
}

#[test]
fn evaluation_is_pure() {
    // Same state evaluated twice gives the same result — the engine
    // fact underlying both theorems.
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x9E01 ^ case);
        let sheet = arb_sheet(&mut rng);
        let a = sheet.evaluate_now();
        let b = sheet.evaluate_now();
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn operators_never_panic() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0xA703 ^ case);
        let sheet = arb_sheet(&mut rng);
        let op = arb_op(&mut rng);
        let mut s = sheet.clone();
        // Result may be Ok or a typed error, but never a panic.
        let _ = op.apply(&mut s);
        let _ = s.evaluate_now();
    }
}

#[test]
fn known_noncommuting_pair_is_rejected() {
    // Regression guard: aggregation then dependent selection must never be
    // approved (precedence).
    let sheet = Spreadsheet::over(used_cars());
    let agg = AlgebraOp::Aggregate {
        func: AggFunc::Avg,
        column: "Price".into(),
        level: 1,
    };
    let dep = AlgebraOp::Select {
        predicate: Expr::col("Price").lt(Expr::col("Avg_Price")),
    };
    assert!(!may_commute(&agg, &dep, &sheet));
}
