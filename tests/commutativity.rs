//! Theorem 2, property-tested: whenever [`may_commute`] approves a pair
//! of unary operator instances, applying them in either order yields the
//! *identical* evaluated spreadsheet (data, grouping tree, and visible
//! columns).
//!
//! The generator draws from every unary operator of the algebra —
//! selection, projection, aggregation, formula computation, duplicate
//! elimination, grouping and ordering — over the paper's used-car data.

use proptest::prelude::*;
use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::{may_commute, AlgebraOp, SheetError};

fn arb_column() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec!["ID", "Model", "Price", "Year", "Mileage", "Condition"])
}

fn arb_numeric_column() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec!["ID", "Price", "Year", "Mileage"])
}

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Asc), Just(Direction::Desc)]
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (arb_numeric_column(), 13_000..19_000i64)
            .prop_map(|(c, v)| Expr::col(c).lt(Expr::lit(v))),
        (arb_numeric_column(), 2004..2008i64)
            .prop_map(|(c, v)| Expr::col(c).ge(Expr::lit(v))),
        proptest::sample::select(vec!["Jetta", "Civic", "Accord"])
            .prop_map(|m| Expr::col("Model").eq(Expr::lit(m))),
        proptest::sample::select(vec!["Good", "Excellent"])
            .prop_map(|c| Expr::col("Condition").eq(Expr::lit(c))),
    ]
}

fn arb_op() -> impl Strategy<Value = AlgebraOp> {
    prop_oneof![
        arb_predicate().prop_map(|predicate| AlgebraOp::Select { predicate }),
        arb_column().prop_map(|c| AlgebraOp::Project { column: c.to_string() }),
        (
            proptest::sample::select(vec![
                AggFunc::Avg,
                AggFunc::Sum,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Count
            ]),
            arb_numeric_column(),
            1usize..=3
        )
            .prop_map(|(func, column, level)| AlgebraOp::Aggregate {
                func,
                column: column.to_string(),
                level,
            }),
        (proptest::sample::select(vec!["Fa", "Fb", "Fc"]), arb_numeric_column()).prop_map(
            |(name, col)| AlgebraOp::Formula {
                name: Some(name.to_string()),
                expr: Expr::col(col).add(Expr::lit(1)),
            }
        ),
        Just(AlgebraOp::Dedup),
        (arb_column(), arb_direction())
            .prop_map(|(c, order)| AlgebraOp::Group { basis: vec![c.to_string()], order }),
        (arb_column(), arb_direction(), 1usize..=3).prop_map(|(c, order, level)| {
            AlgebraOp::Order { attribute: c.to_string(), order, level }
        }),
    ]
}

/// A starting sheet with 0–2 preparatory operators applied (so pairs are
/// tested against grouped/filtered states too).
fn arb_sheet() -> impl Strategy<Value = Spreadsheet> {
    proptest::collection::vec(arb_op(), 0..3).prop_map(|prep| {
        let mut s = Spreadsheet::over(used_cars());
        for op in prep {
            // Invalid preparatory steps are simply skipped.
            let _ = op.apply(&mut s);
        }
        s
    })
}

type Outcome = Result<spreadsheet_algebra::Derived, SheetError>;

fn run(sheet: &Spreadsheet, first: &AlgebraOp, second: &AlgebraOp) -> Outcome {
    let mut s = sheet.clone();
    first.apply(&mut s)?;
    second.apply(&mut s)?;
    s.evaluate_now()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn theorem2_commuting_pairs_agree(sheet in arb_sheet(), a in arb_op(), b in arb_op()) {
        if may_commute(&a, &b, &sheet) {
            let ab = run(&sheet, &a, &b);
            let ba = run(&sheet, &b, &a);
            match (ab, ba) {
                (Ok(x), Ok(y)) => prop_assert!(
                    x.equivalent(&y),
                    "approved pair produced different sheets: {} / {}", a, b
                ),
                // An approved pair must at least fail identically in both
                // orders (e.g. an aggregate level that does not exist).
                (Err(_), Err(_)) => {}
                (x, y) => prop_assert!(
                    false,
                    "approved pair {} / {} succeeded in one order only: {:?} vs {:?}",
                    a, b, x.is_ok(), y.is_ok()
                ),
            }
        }
    }

    #[test]
    fn evaluation_is_pure(sheet in arb_sheet()) {
        // Same state evaluated twice gives the same result — the engine
        // fact underlying both theorems.
        let a = sheet.evaluate_now();
        let b = sheet.evaluate_now();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn operators_never_panic(sheet in arb_sheet(), op in arb_op()) {
        let mut s = sheet.clone();
        // Result may be Ok or a typed error, but never a panic.
        let _ = op.apply(&mut s);
        let _ = s.evaluate_now();
    }
}

#[test]
fn known_noncommuting_pair_is_rejected() {
    // Regression guard: aggregation then dependent selection must never be
    // approved (precedence).
    let sheet = Spreadsheet::over(used_cars());
    let agg = AlgebraOp::Aggregate { func: AggFunc::Avg, column: "Price".into(), level: 1 };
    let dep = AlgebraOp::Select {
        predicate: Expr::col("Price").lt(Expr::col("Avg_Price")),
    };
    assert!(!may_commute(&agg, &dep, &sheet));
}
