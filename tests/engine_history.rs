//! History/undo properties of the [`Engine`] — "rapid incremental
//! reversible operations" (direct-manipulation desideratum iii).
//!
//! * undoing everything returns exactly to the base spreadsheet;
//! * undo then redo is an identity;
//! * the history listing always matches the operations that succeeded.

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::AlgebraOp;
use ssa_relation::rng::Rng;

fn arb_op(rng: &mut Rng) -> AlgebraOp {
    match rng.gen_range(0..7usize) {
        0 => AlgebraOp::Select {
            predicate: Expr::col("Price").lt(Expr::lit(rng.gen_range(13_000..19_000i64))),
        },
        1 => AlgebraOp::Select {
            predicate: Expr::col("Model").eq(Expr::lit(*rng.pick(&["Jetta", "Civic"]))),
        },
        2 => AlgebraOp::Group {
            basis: vec![rng.pick(&["Model", "Condition", "Year"]).to_string()],
            order: Direction::Asc,
        },
        3 => AlgebraOp::Aggregate {
            func: *rng.pick(&[AggFunc::Avg, AggFunc::Count]),
            column: "Price".into(),
            level: rng.gen_range(1..=2usize),
        },
        4 => AlgebraOp::Project {
            column: rng.pick(&["Mileage", "Condition", "ID"]).to_string(),
        },
        5 => AlgebraOp::Dedup,
        _ => AlgebraOp::Order {
            attribute: rng.pick(&["Price", "Mileage"]).to_string(),
            order: Direction::Desc,
            level: rng.gen_range(1..=2usize),
        },
    }
}

fn arb_ops(rng: &mut Rng, lo: usize, hi: usize) -> Vec<AlgebraOp> {
    (0..rng.gen_range(lo..hi)).map(|_| arb_op(rng)).collect()
}

/// Apply an op through the engine, counting only successes.
fn apply(engine: &mut Engine, op: &AlgebraOp) -> bool {
    match op {
        AlgebraOp::Select { predicate } => engine.select(predicate.clone()).is_ok(),
        AlgebraOp::Group { basis, order } => {
            let refs: Vec<&str> = basis.iter().map(|s| s.as_str()).collect();
            engine.group(&refs, *order).is_ok()
        }
        AlgebraOp::Aggregate {
            func,
            column,
            level,
        } => engine.aggregate(*func, column, *level).is_ok(),
        AlgebraOp::Project { column } => engine.project_out(column).is_ok(),
        AlgebraOp::Dedup => engine.dedup().is_ok(),
        AlgebraOp::Order {
            attribute,
            order,
            level,
        } => engine.order(attribute, *order, *level).is_ok(),
        AlgebraOp::Formula { name, expr } => engine.formula(name.as_deref(), expr.clone()).is_ok(),
        AlgebraOp::Reinstate { column } => engine.reinstate(column).is_ok(),
    }
}

#[test]
fn undo_everything_restores_base() {
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0x0A11 ^ case);
        let ops = arb_ops(&mut rng, 0, 10);
        let mut engine = Engine::over(used_cars());
        let baseline = engine.sheet().evaluate_now().unwrap();
        let succeeded = ops.iter().filter(|op| apply(&mut engine, op)).count();
        assert_eq!(engine.history().len(), succeeded, "case {case}");
        engine.undo_steps(succeeded).unwrap();
        assert_eq!(
            engine.sheet().evaluate_now().unwrap(),
            baseline,
            "case {case}"
        );
        assert!(engine.history().is_empty(), "case {case}");
    }
}

#[test]
fn undo_redo_round_trip() {
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0x0B22 ^ case);
        let ops = arb_ops(&mut rng, 1, 10);
        let k = rng.gen_range(1..5usize);
        let mut engine = Engine::over(used_cars());
        let succeeded = ops.iter().filter(|op| apply(&mut engine, op)).count();
        if succeeded == 0 {
            continue;
        }
        let before = engine.sheet().evaluate_now().unwrap();
        let k = k.min(succeeded);
        engine.undo_steps(k).unwrap();
        engine.redo_steps(k).unwrap();
        assert_eq!(
            engine.sheet().evaluate_now().unwrap(),
            before,
            "case {case}"
        );
        // redo stack is exhausted again
        assert!(engine.redo().is_err(), "case {case}");
    }
}

#[test]
fn history_entries_are_numbered_and_named() {
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0x0C33 ^ case);
        let ops = arb_ops(&mut rng, 0, 8);
        let mut engine = Engine::over(used_cars());
        for op in &ops {
            apply(&mut engine, op);
        }
        for (i, line) in engine.history().iter().enumerate() {
            assert!(
                line.starts_with(&format!("{}. ", i + 1)),
                "bad numbering: {line}"
            );
            assert!(line.len() > 4, "entry has a name: {line}");
        }
    }
}

#[test]
fn failed_ops_never_change_the_sheet() {
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0x0D44 ^ case);
        let ops = arb_ops(&mut rng, 0, 8);
        let mut engine = Engine::over(used_cars());
        for op in &ops {
            let before = engine.sheet().evaluate_now();
            if !apply(&mut engine, op) {
                assert_eq!(engine.sheet().evaluate_now(), before, "case {case}");
            }
        }
    }
}

#[test]
fn undo_across_save_does_not_affect_stored_snapshot() {
    let mut engine = Engine::over(used_cars());
    engine
        .select(Expr::col("Model").eq(Expr::lit("Jetta")))
        .unwrap();
    let stored = engine.save("jettas").unwrap();
    engine.undo().unwrap();
    // the live sheet is back to 9 rows, the snapshot still has 6
    assert_eq!(engine.view().unwrap().len(), 9);
    assert_eq!(stored.relation.len(), 6);
}
