//! History/undo properties of the [`Engine`] — "rapid incremental
//! reversible operations" (direct-manipulation desideratum iii).
//!
//! * undoing everything returns exactly to the base spreadsheet;
//! * undo then redo is an identity;
//! * the history listing always matches the operations that succeeded.

use proptest::prelude::*;
use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::AlgebraOp;

fn arb_op() -> impl Strategy<Value = AlgebraOp> {
    prop_oneof![
        (13_000..19_000i64)
            .prop_map(|v| AlgebraOp::Select { predicate: Expr::col("Price").lt(Expr::lit(v)) }),
        proptest::sample::select(vec!["Jetta", "Civic"]).prop_map(|m| AlgebraOp::Select {
            predicate: Expr::col("Model").eq(Expr::lit(m)),
        }),
        proptest::sample::select(vec!["Model", "Condition", "Year"]).prop_map(|c| {
            AlgebraOp::Group { basis: vec![c.to_string()], order: Direction::Asc }
        }),
        (
            proptest::sample::select(vec![AggFunc::Avg, AggFunc::Count]),
            1usize..=2
        )
            .prop_map(|(func, level)| AlgebraOp::Aggregate {
                func,
                column: "Price".into(),
                level,
            }),
        proptest::sample::select(vec!["Mileage", "Condition", "ID"])
            .prop_map(|c| AlgebraOp::Project { column: c.to_string() }),
        Just(AlgebraOp::Dedup),
        (proptest::sample::select(vec!["Price", "Mileage"]), 1usize..=2).prop_map(
            |(c, level)| AlgebraOp::Order {
                attribute: c.to_string(),
                order: Direction::Desc,
                level,
            }
        ),
    ]
}

/// Apply an op through the engine, counting only successes.
fn apply(engine: &mut Engine, op: &AlgebraOp) -> bool {
    match op {
        AlgebraOp::Select { predicate } => engine.select(predicate.clone()).is_ok(),
        AlgebraOp::Group { basis, order } => {
            let refs: Vec<&str> = basis.iter().map(|s| s.as_str()).collect();
            engine.group(&refs, *order).is_ok()
        }
        AlgebraOp::Aggregate { func, column, level } => {
            engine.aggregate(*func, column, *level).is_ok()
        }
        AlgebraOp::Project { column } => engine.project_out(column).is_ok(),
        AlgebraOp::Dedup => engine.dedup().is_ok(),
        AlgebraOp::Order { attribute, order, level } => {
            engine.order(attribute, *order, *level).is_ok()
        }
        AlgebraOp::Formula { name, expr } => {
            engine.formula(name.as_deref(), expr.clone()).is_ok()
        }
        AlgebraOp::Reinstate { column } => engine.reinstate(column).is_ok(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn undo_everything_restores_base(ops in proptest::collection::vec(arb_op(), 0..10)) {
        let mut engine = Engine::over(used_cars());
        let baseline = engine.sheet().evaluate_now().unwrap();
        let succeeded = ops.iter().filter(|op| apply(&mut engine, op)).count();
        prop_assert_eq!(engine.history().len(), succeeded);
        engine.undo_steps(succeeded).unwrap();
        prop_assert_eq!(engine.sheet().evaluate_now().unwrap(), baseline);
        prop_assert!(engine.history().is_empty());
    }

    #[test]
    fn undo_redo_round_trip(ops in proptest::collection::vec(arb_op(), 1..10), k in 1usize..5) {
        let mut engine = Engine::over(used_cars());
        let succeeded = ops.iter().filter(|op| apply(&mut engine, op)).count();
        prop_assume!(succeeded > 0);
        let before = engine.sheet().evaluate_now().unwrap();
        let k = k.min(succeeded);
        engine.undo_steps(k).unwrap();
        engine.redo_steps(k).unwrap();
        prop_assert_eq!(engine.sheet().evaluate_now().unwrap(), before);
        // redo stack is exhausted again
        prop_assert!(engine.redo().is_err());
    }

    #[test]
    fn history_entries_are_numbered_and_named(ops in proptest::collection::vec(arb_op(), 0..8)) {
        let mut engine = Engine::over(used_cars());
        for op in &ops {
            apply(&mut engine, op);
        }
        for (i, line) in engine.history().iter().enumerate() {
            prop_assert!(line.starts_with(&format!("{}. ", i + 1)), "bad numbering: {line}");
            prop_assert!(line.len() > 4, "entry has a name: {line}");
        }
    }

    #[test]
    fn failed_ops_never_change_the_sheet(ops in proptest::collection::vec(arb_op(), 0..8)) {
        let mut engine = Engine::over(used_cars());
        for op in &ops {
            let before = engine.sheet().evaluate_now();
            if !apply(&mut engine, op) {
                prop_assert_eq!(engine.sheet().evaluate_now(), before);
            }
        }
    }
}

#[test]
fn undo_across_save_does_not_affect_stored_snapshot() {
    let mut engine = Engine::over(used_cars());
    engine.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
    let stored = engine.save("jettas").unwrap();
    engine.undo().unwrap();
    // the live sheet is back to 9 rows, the snapshot still has 6
    assert_eq!(engine.view().unwrap().len(), 9);
    assert_eq!(stored.relation.len(), 6);
}
