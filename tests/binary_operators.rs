//! Binary operators (Defs. 7–10) and points of non-commutativity:
//! asymmetry, multiset semantics, computed-column survival, and the
//! freezing of earlier state.

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::{dealers, used_cars};
use ssa_relation::schema::Schema;
use ssa_relation::ValueType::Int;
use ssa_relation::{Relation, Tuple};

fn store(mut sheet: Spreadsheet, name: &str) -> StoredSheet {
    let _ = &mut sheet;
    sheet.save(name).expect("save succeeds")
}

#[test]
fn product_is_asymmetric_in_presentation() {
    // "product is not symmetric … since the grouping and ordering would
    // be different" (Def. 7 discussion).
    let mut left = Spreadsheet::over(used_cars());
    left.group(&["Model"], Direction::Desc).unwrap();
    let left_stored = store(left.clone(), "cars_grouped");

    let mut right = Spreadsheet::over(dealers());
    right.group(&["City"], Direction::Asc).unwrap();
    let right_stored = store(right.clone(), "dealers_grouped");

    left.product(&right_stored).unwrap();
    right.product(&left_stored).unwrap();

    // same multiset of combined tuples (modulo column naming/order) …
    assert_eq!(left.view().unwrap().len(), right.view().unwrap().len());
    // … but different grouping: left groups by Model, right by City.
    assert!(left.state().spec.in_relative_basis("Model", 2));
    assert!(right.state().spec.in_relative_basis("City", 2));
}

#[test]
fn union_uses_current_sheets_presentation() {
    let mut jettas = Spreadsheet::over(used_cars());
    jettas
        .select(Expr::col("Model").eq(Expr::lit("Jetta")))
        .unwrap();
    let jettas_stored = store(jettas, "jettas");

    let mut current = Spreadsheet::over(used_cars());
    current
        .select(Expr::col("Model").eq(Expr::lit("Civic")))
        .unwrap();
    current.group(&["Year"], Direction::Desc).unwrap();
    current.union(&jettas_stored).unwrap();

    // grouping of the *current* sheet survives the union
    assert!(current.state().spec.in_relative_basis("Year", 2));
    let view = current.view().unwrap();
    assert_eq!(view.len(), 9);
    // 2006 group first (DESC): 423, 723, 725 (Jetta) + 879, 322 (Civic)
    let years = view.data.column_values("Year").unwrap();
    assert_eq!(years[0], Value::Int(2006));
    assert_eq!(years[8], Value::Int(2005));
}

#[test]
fn difference_cancels_one_duplicate_per_tuple() {
    // {t, t} − {t} = {t} (Sec. III-B).
    let schema = Schema::of(&[("x", Int)]);
    let doubled = Relation::with_rows(
        "doubled",
        schema.clone(),
        vec![
            ssa_relation::tuple![1],
            ssa_relation::tuple![1],
            ssa_relation::tuple![2],
        ],
    )
    .unwrap();
    let single = Relation::with_rows("single", schema, vec![ssa_relation::tuple![1]]).unwrap();

    let mut sheet = Spreadsheet::over(doubled);
    let stored = store(Spreadsheet::over(single), "single");
    sheet.difference(&stored).unwrap();
    let view = sheet.view().unwrap();
    assert_eq!(view.len(), 2);
    let xs = view.data.column_values("x").unwrap();
    assert!(xs.contains(&Value::Int(1)) && xs.contains(&Value::Int(2)));
}

#[test]
fn join_condition_can_mix_both_sides_arithmetic() {
    let mut sheet = Spreadsheet::over(used_cars());
    let stored = store(Spreadsheet::over(dealers()), "dealers");
    // join on Model equality AND a price floor — arbitrary SQL-supported F
    sheet
        .join(
            &stored,
            Expr::col("Model")
                .eq(Expr::col("dealers.Model"))
                .and(Expr::col("Price").gt(Expr::lit(15000))),
        )
        .unwrap();
    let view = sheet.view().unwrap();
    // cars > 15000: 901, 423, 723, 725 (Jetta ×1 dealer), 322 (Civic ×2)
    assert_eq!(view.len(), 4 + 2);
}

#[test]
fn epoch_counts_points_of_non_commutativity() {
    let mut sheet = Spreadsheet::over(used_cars());
    let stored = store(Spreadsheet::over(used_cars()), "all");
    assert_eq!(sheet.epoch(), 0);
    sheet.union(&stored).unwrap();
    assert_eq!(sheet.epoch(), 1);
    sheet.difference(&stored).unwrap();
    assert_eq!(sheet.epoch(), 2);
}

#[test]
fn selections_before_binary_are_baked_into_data() {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
    let stored = store(Spreadsheet::over(used_cars()), "all");
    sheet.union(&stored).unwrap();
    // the 2005 filter was applied to the left operand before the union:
    // 4 + 9 = 13 rows, and the filter is no longer in the state.
    assert_eq!(sheet.view().unwrap().len(), 13);
    assert!(sheet.state().selections.is_empty());
    // removing rows now requires a *new* selection, which applies to the
    // whole union result.
    sheet.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
    assert_eq!(sheet.view().unwrap().len(), 8); // 4 + 4
}

#[test]
fn projections_survive_binary_operators() {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.project_out("Mileage").unwrap();
    let stored = store(Spreadsheet::over(used_cars()), "all");
    sheet.union(&stored).unwrap();
    assert!(!sheet
        .view()
        .unwrap()
        .visible
        .contains(&"Mileage".to_string()));
    // and the hidden column still exists in R for later reinstatement
    sheet.reinstate("Mileage").unwrap();
    assert!(sheet
        .view()
        .unwrap()
        .visible
        .contains(&"Mileage".to_string()));
}

/// Multiset identity: (A ∪ B) − B == A, for random small relations.
#[test]
fn union_then_difference_is_identity() {
    use ssa_relation::rng::Rng;
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xB1AA ^ case);
        let xs: Vec<i64> = (0..rng.gen_range(0..12usize))
            .map(|_| rng.gen_range(0..5i64))
            .collect();
        let ys: Vec<i64> = (0..rng.gen_range(0..12usize))
            .map(|_| rng.gen_range(0..5i64))
            .collect();
        let schema = Schema::of(&[("x", Int)]);
        let a = Relation::with_rows(
            "a",
            schema.clone(),
            xs.iter()
                .map(|&x| Tuple::new(vec![Value::Int(x)]))
                .collect(),
        )
        .unwrap();
        let b = Relation::with_rows(
            "b",
            schema,
            ys.iter()
                .map(|&y| Tuple::new(vec![Value::Int(y)]))
                .collect(),
        )
        .unwrap();

        let mut sheet = Spreadsheet::over(a.clone());
        let stored_b = Spreadsheet::over(b).save("b").unwrap();
        sheet.union(&stored_b).unwrap();
        sheet.difference(&stored_b).unwrap();
        let result = sheet.evaluate_now().unwrap().visible_relation().unwrap();
        assert!(result.multiset_eq(&a), "case {case}");
    }
}

mod join_differentials {
    //! Randomized differentials for the hash-join engine:
    //! `join(l, r, F)` must equal `select(product(l, r), F)` — the
    //! definitional oracle — *row for row*, across conditions with
    //! single/multi equi-keys, residuals, no equi-conjunct at all,
    //! NULL keys and duplicate keys, sequentially and parallel.

    use ssa_relation::ops::{self, oracle};
    use ssa_relation::rng::Rng;
    use ssa_relation::schema::Schema;
    use ssa_relation::ValueType::{Int, Str};
    use ssa_relation::{Expr, Relation, Tuple, Value};

    /// Small domains so every case has duplicate keys; ~1/6 NULLs so
    /// every case exercises the Null-keys-never-match rule.
    fn arb_rows(rng: &mut Rng, n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|_| {
                let key = if rng.gen_bool(1.0 / 6.0) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..6i64))
                };
                let s = if rng.gen_bool(1.0 / 6.0) {
                    Value::Null
                } else {
                    Value::str(*rng.pick(&["a", "b", "c"]))
                };
                let v = Value::Int(rng.gen_range(-20..20i64));
                Tuple::new(vec![key, s, v])
            })
            .collect()
    }

    fn operands(rng: &mut Rng) -> (Relation, Relation) {
        let nl = rng.gen_range(0..40usize);
        let nr = rng.gen_range(0..40usize);
        let left = Relation::with_rows(
            "l",
            Schema::of(&[("k", Int), ("s", Str), ("v", Int)]),
            arb_rows(rng, nl),
        )
        .unwrap();
        let right = Relation::with_rows(
            "r",
            Schema::of(&[("j", Int), ("t", Str), ("w", Int)]),
            arb_rows(rng, nr),
        )
        .unwrap();
        (left, right)
    }

    /// The condition shapes the planner must get right: pure equi,
    /// multi-key, equi + residual, disjunction (no extractable key),
    /// pure inequality (nested-loop fallback).
    fn arb_condition(case: u64) -> Expr {
        match case % 5 {
            0 => Expr::col("k").eq(Expr::col("j")),
            1 => Expr::col("k")
                .eq(Expr::col("j"))
                .and(Expr::col("s").eq(Expr::col("t"))),
            2 => Expr::col("k")
                .eq(Expr::col("j"))
                .and(Expr::col("v").lt(Expr::col("w"))),
            3 => Expr::col("k")
                .eq(Expr::col("j"))
                .or(Expr::col("v").add(Expr::col("w")).gt(Expr::lit(30))),
            _ => Expr::col("v").lt(Expr::col("w")),
        }
    }

    #[test]
    fn hash_join_equals_select_of_product() {
        for case in 0..200u64 {
            let mut rng = Rng::seed_from_u64(0x10A5 ^ (case << 7));
            let (left, right) = operands(&mut rng);
            let cond = arb_condition(case);
            let expected = oracle::join(&left, &right, &cond).unwrap();
            // Default, forced-sequential and forced-parallel plans all
            // agree with the oracle, in the oracle's row order.
            for joined in [
                ops::join(&left, &right, &cond).unwrap(),
                ops::join_opts(&left, &right, &cond, usize::MAX).unwrap(),
                ops::join_opts(&left, &right, &cond, 1).unwrap(),
                ops::join_nested(&left, &right, &cond, 1).unwrap(),
            ] {
                assert_eq!(
                    joined.rows(),
                    expected.rows(),
                    "case {case} condition {cond}"
                );
                assert_eq!(joined.schema(), expected.schema(), "case {case}");
            }
        }
    }

    #[test]
    fn hashed_distinct_difference_union_match_oracle() {
        for case in 0..200u64 {
            let mut rng = Rng::seed_from_u64(0xD1FF ^ (case << 7));
            let (a, _) = operands(&mut rng);
            // Same columns, reversed order: alignment by name must hold.
            let nb = rng.gen_range(0..40usize);
            let b = Relation::with_rows(
                "b",
                Schema::of(&[("v", Int), ("s", Str), ("k", Int)]),
                arb_rows(&mut rng, nb)
                    .into_iter()
                    .map(|t| t.project(&[2, 1, 0]))
                    .collect(),
            )
            .unwrap();
            assert_eq!(
                ops::distinct(&a).unwrap().rows(),
                oracle::distinct(&a).unwrap().rows(),
                "case {case}"
            );
            assert_eq!(
                ops::difference(&a, &b).unwrap().rows(),
                oracle::difference(&a, &b).unwrap().rows(),
                "case {case}"
            );
            assert_eq!(
                ops::union_all(&a, &b).unwrap().rows(),
                oracle::union_all(&a, &b).unwrap().rows(),
                "case {case}"
            );
        }
    }

    #[test]
    fn product_matches_oracle() {
        for case in 0..32u64 {
            let mut rng = Rng::seed_from_u64(0xF00D ^ (case << 7));
            let (left, right) = operands(&mut rng);
            for threshold in [1usize, usize::MAX] {
                assert_eq!(
                    ops::product_opts(&left, &right, threshold).unwrap().rows(),
                    oracle::product(&left, &right).unwrap().rows(),
                    "case {case}"
                );
            }
        }
    }
}

/// Product cardinality: |A × B| = |A|·|B| with retained selections
/// applied first.
#[test]
fn product_cardinality() {
    use ssa_relation::rng::Rng;
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xCA4D ^ case);
        let threshold = rng.gen_range(13_000..19_000i64);
        let mut sheet = Spreadsheet::over(used_cars());
        sheet
            .select(Expr::col("Price").lt(Expr::lit(threshold)))
            .unwrap();
        let kept = sheet.evaluate_now().unwrap().len();
        let stored = Spreadsheet::over(dealers()).save("d").unwrap();
        sheet.product(&stored).unwrap();
        assert_eq!(sheet.evaluate_now().unwrap().len(), kept * 3, "case {case}");
    }
}
