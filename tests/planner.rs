//! Differential and pinned tests for the algebraic query planner
//! (`spreadsheet_algebra::plan`, DESIGN.md §13).
//!
//! The planner's contract is observational equivalence: every rewrite —
//! filter fusion, cheap-first ordering, pre-dedup pushdown, deferred
//! computed columns, join pushdown, greedy join ordering — must leave the
//! result bitwise identical (rows *and* presentation order) to the
//! unplanned pipeline. The randomized suites here check that against two
//! oracles: the naive row-cloning engine for the unary pipeline, and the
//! literal `σ(scan₀ × scan₁ × …)` product fold for multi-relation plans.
//! The pinned cases nail the *negative* space — points where Theorem 2
//! does not license a rewrite and the planner must decline.

mod common;

use spreadsheet_algebra::eval::{evaluate_with, EvalOptions};
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::plan::{join_with_pushdown, plan_tables, Plan};
use spreadsheet_algebra::prelude::*;
use spreadsheet_algebra::{ComputedColumn, QueryState};
use ssa_relation::ops;
use ssa_relation::par::DEFAULT_PARALLEL_THRESHOLD;
use ssa_relation::rng::Rng;
use ssa_relation::schema::Schema;
use ssa_relation::ValueType::Int;
use ssa_relation::{CmpOp, Relation, Tuple, Value};

const SEED: u64 = 0x51AC_9EED;
const THR: usize = DEFAULT_PARALLEL_THRESHOLD;

// ---------------------------------------------------------------------
// Multi-join plans vs the product-fold oracle
// ---------------------------------------------------------------------

/// A small Int relation: `cols` columns, values drawn from 0..6 so join
/// conditions actually match across inputs.
fn arb_rel(rng: &mut Rng, name: &str, cols: &[&str], rows: usize) -> Relation {
    let schema: Vec<(&str, ssa_relation::ValueType)> = cols.iter().map(|c| (*c, Int)).collect();
    let tuples = (0..rows)
        .map(|_| {
            Tuple::new(
                cols.iter()
                    .map(|_| Value::Int(rng.gen_range(0..6i64)))
                    .collect(),
            )
        })
        .collect();
    Relation::with_rows(name, Schema::of(&schema), tuples).expect("widths match")
}

/// The unplanned reference: fold the FROM-order product, then apply the
/// whole WHERE as one selection at the top.
fn product_select_oracle(
    inputs: &[&Relation],
    condition: Option<&Expr>,
) -> ssa_relation::Result<Relation> {
    let mut cur = inputs[0].clone();
    for r in &inputs[1..] {
        cur = ops::product_opts(&cur, r, THR)?;
    }
    match condition {
        Some(c) => ops::select(&cur, c),
        None => Ok(cur),
    }
}

/// Plan and oracle must agree exactly: same schema names, same rows in
/// the same order — or the same failure.
fn assert_plan_matches_oracle(inputs: &[&Relation], condition: Option<&Expr>, ctx: &str) {
    let reference = product_select_oracle(inputs, condition);
    let planned = plan_tables(inputs, condition).and_then(|p| p.execute(THR));
    match (&reference, &planned) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.schema().names(), b.schema().names(), "{ctx}: schema");
            assert_eq!(a.rows(), b.rows(), "{ctx}: rows/order");
        }
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{ctx}: oracle {a:?} vs planned {b:?}"),
    }
}

#[test]
fn table_plans_match_product_select_oracle() {
    // Distinct column names across inputs: exercises the zero-copy
    // borrow path and all three order-restoration strategies.
    let col_sets: [&[&str]; 4] = [&["A", "A2"], &["B", "B2"], &["C", "C2"], &["D", "D2"]];
    for case in 0..80u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ (case << 7));
        let n = rng.gen_range(2..=4usize);
        let rels: Vec<Relation> = (0..n)
            .map(|j| {
                let rows = rng.gen_range(0..14usize);
                arb_rel(&mut rng, &format!("t{j}"), col_sets[j], rows)
            })
            .collect();
        let inputs: Vec<&Relation> = rels.iter().collect();
        let mut conjs: Vec<Expr> = Vec::new();
        for _ in 0..rng.gen_range(0..5usize) {
            let i = rng.gen_range(0..n);
            let k = rng.gen_range(0..n);
            conjs.push(match rng.gen_range(0..4usize) {
                // Cross/equi conjunct between two inputs (or a self-join
                // conjunct when i == k — a plain filter in disguise).
                0 => Expr::col(col_sets[i][0]).eq(Expr::col(col_sets[k][0])),
                1 => Expr::col(col_sets[i][0]).lt(Expr::col(col_sets[k][1])),
                // Single-table conjunct — pushdown fodder.
                2 => Expr::col(col_sets[i][1]).le(Expr::lit(rng.gen_range(0..6i64))),
                // Column-free conjunct — must stay at the top.
                _ => Expr::lit(rng.gen_range(0..2i64)).eq(Expr::lit(1)),
            });
        }
        let condition = Expr::conjoin(conjs);
        assert_plan_matches_oracle(&inputs, condition.as_ref(), &format!("case {case}"));
    }
}

#[test]
fn table_plans_match_oracle_under_renaming() {
    // Every input shares the column names K/V, so the combined schema
    // prefixes the later inputs ("t1.K", …) and the planner has to run
    // its renamed (owned) path with name-translated statistics.
    for case in 0..40u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ 0xC1A5 ^ (case << 7));
        let n = rng.gen_range(2..=3usize);
        let rels: Vec<Relation> = (0..n)
            .map(|j| {
                let rows = rng.gen_range(0..12usize);
                arb_rel(&mut rng, &format!("t{j}"), &["K", "V"], rows)
            })
            .collect();
        let inputs: Vec<&Relation> = rels.iter().collect();
        let mut conjs = vec![Expr::col("K").eq(Expr::col("t1.K"))];
        if n == 3 && rng.gen_bool(0.7) {
            conjs.push(Expr::col("t1.K").eq(Expr::col("t2.K")));
        }
        if rng.gen_bool(0.5) {
            conjs.push(Expr::col("t1.V").le(Expr::lit(rng.gen_range(0..6i64))));
        }
        if rng.gen_bool(0.5) {
            conjs.push(Expr::col("V").ge(Expr::lit(rng.gen_range(0..6i64))));
        }
        let condition = Expr::conjoin(conjs);
        assert_plan_matches_oracle(&inputs, condition.as_ref(), &format!("case {case}"));
    }
}

#[test]
fn flip_and_prov_strategies_match_oracle() {
    let mut rng = Rng::seed_from_u64(SEED ^ 0xF11F);
    // Chain shape (TPC-H-like): edges 0–1 and 1–2, the cheapest start is
    // the heavily-filtered input 2 → the rest chain {1,2} connects and
    // the planner takes the flip strategy (FROM head stays borrowed).
    let big = arb_rel(&mut rng, "fact", &["A", "A2"], 200);
    let mid = arb_rel(&mut rng, "mid", &["B", "B2"], 40);
    let tiny = arb_rel(&mut rng, "dim", &["C", "C2"], 30);
    let chain_cond = Expr::col("A")
        .eq(Expr::col("B"))
        .and(Expr::col("B2").eq(Expr::col("C")))
        .and(Expr::col("C2").eq(Expr::lit(3)));
    assert_plan_matches_oracle(&[&big, &mid, &tiny], Some(&chain_cond), "flip");

    // Star shape: both edges go through input 0, so once the greedy
    // order starts from the filtered dim the rest {1,2} cannot connect —
    // the planner must fall back to full provenance restoration.
    let star_cond = Expr::col("A")
        .eq(Expr::col("B"))
        .and(Expr::col("A2").eq(Expr::col("C")))
        .and(Expr::col("C2").eq(Expr::lit(3)));
    assert_plan_matches_oracle(&[&big, &mid, &tiny], Some(&star_cond), "prov");
}

#[test]
fn table_plan_errors_match_oracle_errors() {
    let mut rng = Rng::seed_from_u64(SEED ^ 0xE77);
    let a = arb_rel(&mut rng, "a", &["A"], 5);
    let b = arb_rel(&mut rng, "b", &["B"], 5);
    // A condition naming a column neither input has must fail in both
    // pipelines (at the top, not silently dropped).
    let cond = Expr::col("A").eq(Expr::col("Ghost"));
    assert_plan_matches_oracle(&[&a, &b], Some(&cond), "unknown column");
}

// ---------------------------------------------------------------------
// Binary join pushdown vs the direct join
// ---------------------------------------------------------------------

#[test]
fn pushdown_join_matches_direct_join() {
    for case in 0..60u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ 0x101A ^ (case << 7));
        let (ln, rn) = (rng.gen_range(0..20usize), rng.gen_range(0..20usize));
        let left = arb_rel(&mut rng, "l", &["L1", "L2"], ln);
        let right = arb_rel(&mut rng, "r", &["R1", "R2"], rn);
        let mut conjs: Vec<Expr> = Vec::new();
        for _ in 0..rng.gen_range(1..4usize) {
            conjs.push(match rng.gen_range(0..4usize) {
                0 => Expr::col("L1").eq(Expr::col("R1")),
                1 => Expr::col("L1").lt(Expr::col("R2")),
                2 => Expr::col("L2").le(Expr::lit(rng.gen_range(0..6i64))),
                _ => Expr::col("R2").ge(Expr::lit(rng.gen_range(0..6i64))),
            });
        }
        let cond = Expr::conjoin(conjs).expect("non-empty");
        let direct = ops::join_opts(&left, &right, &cond, THR).expect("direct join");
        let pushed = join_with_pushdown(&left, &right, &cond, THR).expect("pushdown join");
        assert_eq!(
            direct.schema().names(),
            pushed.schema().names(),
            "case {case}"
        );
        assert_eq!(direct.rows(), pushed.rows(), "case {case}: rows/order");
    }
}

// ---------------------------------------------------------------------
// Unary pipeline: fused filters vs the naive oracle
// ---------------------------------------------------------------------

fn naive() -> EvalOptions {
    EvalOptions {
        naive: true,
        ..EvalOptions::default()
    }
}

#[test]
fn fused_filter_stacks_match_naive_engine() {
    // Many same-rank predicates: the planner fuses them into one pass and
    // reorders them cheap-first; the naive oracle runs them one at a
    // time in insertion order. Results must be identical.
    for case in 0..40u64 {
        let mut rng = Rng::seed_from_u64(SEED ^ 0xF05E ^ (case << 7));
        let mut st = QueryState::new();
        st.dedup = rng.gen_bool(0.5);
        for _ in 0..rng.gen_range(2..7usize) {
            st.add_selection(common::arb_predicate(&mut rng));
        }
        if rng.gen_bool(0.5) {
            st.computed.push(ComputedColumn::aggregate(
                "Avg_Price",
                AggFunc::Avg,
                "Price",
                1,
                vec![],
            ));
            st.add_selection(Expr::col("Price").le(Expr::col("Avg_Price")));
        }
        let base = used_cars();
        let reference = evaluate_with(&base, &st, naive());
        let candidate = evaluate_with(&base, &st, EvalOptions::default());
        match (&reference, &candidate) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("case {case}: naive {a:?} vs planned {b:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Pinned negative cases: where rewrites must NOT fire
// ---------------------------------------------------------------------

/// Rewrites never cross a precedence (non-commutativity) point: a
/// selection reading a computed column keeps that column's rank, and a
/// rank-0 selection hoists above dedup while the computed one cannot.
#[test]
fn computed_selection_stays_above_compute_and_dedup() {
    let mut st = QueryState::new();
    st.dedup = true;
    st.computed.push(ComputedColumn::aggregate(
        "Avg_Price",
        AggFunc::Avg,
        "Price",
        1,
        vec![],
    ));
    st.add_selection(Expr::col("Year").ge(Expr::lit(2005)));
    st.add_selection(Expr::col("Price").le(Expr::col("Avg_Price")));

    let base = used_cars();
    let text = Plan::prepare(&base, &st).expect("plan").render();
    let idx = |needle: &str| {
        text.find(needle)
            .unwrap_or_else(|| panic!("missing {needle:?} in:\n{text}"))
    };
    // Render is root-first, so operators later in the pipeline appear
    // earlier in the text. Pipeline must be:
    //   Scan → Filter(Year) → Distinct → Compute(Avg) → Filter(Price≤Avg)
    assert!(idx("Filter Price <= Avg_Price") < idx("Compute [Avg_Price]"));
    assert!(idx("Compute [Avg_Price]") < idx("Distinct"));
    assert!(idx("Distinct") < idx("Filter Year >= 2005"));
    assert!(idx("Filter Year >= 2005") < idx("Scan cars"));

    // And the rewired engine still matches the oracle on this state.
    let a = evaluate_with(&base, &st, naive()).expect("naive");
    let b = evaluate_with(&base, &st, EvalOptions::default()).expect("planned");
    assert_eq!(a, b);
}

/// `σ(A − B) = σ(A) − B` holds, but `A − σ(B)` does not — the classic
/// counterexample is `{1} − σ_{x≠1}({1})`. The engine must produce the
/// selection-after-difference result, never the pushed-right one.
#[test]
fn difference_right_side_pushdown_is_declined() {
    let rel = |name: &str, vals: &[i64]| {
        Relation::with_rows(
            name,
            Schema::of(&[("X", Int)]),
            vals.iter()
                .map(|&v| Tuple::new(vec![Value::Int(v)]))
                .collect(),
        )
        .expect("widths match")
    };
    let a = rel("a", &[1, 2]);
    let b = rel("b", &[1]);
    let sel = Expr::col("X").cmp(CmpOp::Ne, Expr::lit(1));

    // The unsound rewrite would keep row 1 alive: A − σ(B) = {1, 2}.
    let pushed_right =
        ops::difference(&a, &ops::select(&b, &sel).expect("select")).expect("difference");
    assert_eq!(pushed_right.len(), 2);

    // The sheet pipeline: difference, then the selection — must be {2}.
    let mut sheet = Spreadsheet::over(a);
    let stored = Spreadsheet::over(b).save("b").expect("save");
    sheet.difference(&stored).expect("difference");
    sheet.select(sel).expect("select");
    let view = sheet.view().expect("view");
    assert_eq!(view.data.rows(), &[Tuple::new(vec![Value::Int(2)])]);
}

/// The planner's join-condition split must not push a conjunct that
/// mentions columns of both sides, nor lose one that resolves nowhere.
#[test]
fn cross_side_conjuncts_stay_in_the_join_condition() {
    let mut rng = Rng::seed_from_u64(SEED ^ 0x5217);
    let left = arb_rel(&mut rng, "l", &["L1", "L2"], 8);
    let right = arb_rel(&mut rng, "r", &["R1", "R2"], 8);
    // Mixed condition: one pushable per side, one genuinely cross-side
    // non-equi conjunct that must survive at the join.
    let cond = Expr::col("L2")
        .le(Expr::lit(4))
        .and(Expr::col("R2").ge(Expr::lit(1)))
        .and(Expr::col("L1").lt(Expr::col("R1")));
    let direct = ops::join_opts(&left, &right, &cond, THR).expect("direct");
    let pushed = join_with_pushdown(&left, &right, &cond, THR).expect("pushed");
    assert_eq!(direct.rows(), pushed.rows());
}

// ---------------------------------------------------------------------
// Fault injection: planned paths stay transactional
// ---------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;
    use ssa_relation::fault::{self, Behavior};

    /// An injected fault inside the planned join tree surfaces as an
    /// error from `execute` (no partial result), and the same plan runs
    /// clean once the site is disarmed.
    #[test]
    fn planned_join_tree_propagates_injected_faults() {
        let _guard = fault::lock();
        let mut rng = Rng::seed_from_u64(SEED ^ 0xFA17);
        let a = arb_rel(&mut rng, "a", &["A", "A2"], 30);
        let b = arb_rel(&mut rng, "b", &["B", "B2"], 10);
        let cond = Expr::col("A").eq(Expr::col("B"));
        let inputs = [&a, &b];
        let plan = plan_tables(&inputs, Some(&cond)).expect("plan");

        fault::arm("ops.join", 1, Behavior::Error);
        let tripped = plan.execute(THR);
        fault::disarm("ops.join");
        assert!(tripped.is_err(), "armed ops.join must fail the execute");

        let clean = plan.execute(THR).expect("clean execute");
        let oracle = super::product_select_oracle(&inputs, Some(&cond)).expect("oracle");
        assert_eq!(clean.rows(), oracle.rows());
    }

    /// A fault in the fused filter pass makes the select edit fail, and
    /// the transactional sheet rolls back to a perfect no-op.
    #[test]
    fn fused_filter_fault_rolls_back_select_edit() {
        let _guard = fault::lock();
        let mut s = Spreadsheet::over(used_cars());
        s.select(Expr::col("Year").ge(Expr::lit(2005)))
            .expect("first select");
        s.view().expect("view");
        let mut baseline = s.clone();

        fault::arm("eval.filter", 1, Behavior::Error);
        let result = s.select(Expr::col("Price").lt(Expr::lit(17_000)));
        fault::disarm("eval.filter");
        assert!(result.is_err(), "armed eval.filter must fail the edit");

        assert_eq!(s.state(), baseline.state(), "state rolled back");
        assert_eq!(s.epoch(), baseline.epoch(), "epoch rolled back");
        assert_eq!(
            s.view().expect("view"),
            baseline.view().expect("baseline view"),
            "view rolled back"
        );
    }
}
