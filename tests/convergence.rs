//! Randomized multi-replica convergence (DESIGN.md §17): two or three
//! replicas commit interleaved query-state ops and base-data deltas,
//! exchange op-logs through lossy schedules — partitions, reordered
//! batches, duplicate delivery — and must end bitwise equal to a
//! single-site oracle that merges every event once.
//!
//! Case count scales with `SSA_CONVERGENCE_CASES` (default 120; CI runs
//! 500), each case fully determined by its seed.

use spreadsheet_algebra::{MergePath, OpEvent, Replica, SheetOp, VersionVector};
use ssa_relation::rng::Rng;
use ssa_relation::{csv, Relation, Tuple, Value};

fn base() -> Relation {
    csv::parse_csv(
        "cars",
        "Id,Model,Price,Year\n\
         1,Jetta,15500,2005\n\
         2,Golf,13990,2004\n\
         3,Jetta,16990,2006\n\
         4,Passat,22400,2006\n\
         5,Beetle,9900,2001\n\
         6,Golf,11500,2003\n",
    )
    .expect("base csv")
}

/// One random op command; invalid-in-context ops are fine — the replica
/// rejects them at commit time and the schedule just moves on.
fn random_op(rng: &mut Rng, next_row_id: &mut i64) -> SheetOp {
    let columns = ["Id", "Model", "Price", "Year"];
    match rng.gen_range(0..12u32) {
        0..=2 => {
            let col = *rng.pick(&["Price", "Year"]);
            let cmp = *rng.pick(&["<", ">", "<=", ">="]);
            let lit = match col {
                "Price" => rng.gen_range(9_000..25_000i64),
                _ => rng.gen_range(2000..2008i64),
            };
            parse(&format!("select {col} {cmp} {lit}"))
        }
        3 => parse(&format!(
            "group {} {}",
            rng.pick(&["Model", "Year"]),
            rng.pick(&["asc", "desc"])
        )),
        4 => parse("ungroup"),
        5 => parse(&format!("hide {}", rng.pick(&columns))),
        6 => parse(&format!("show {}", rng.pick(&columns))),
        7 => parse(&format!(
            "agg {} Price {}",
            rng.pick(&["avg", "sum", "min", "max"]),
            rng.gen_range(0..3u32)
        )),
        8 => parse(&format!(
            "order {} {} {}",
            rng.pick(&["Price", "Year"]),
            rng.pick(&["asc", "desc"]),
            rng.gen_range(0..2u32)
        )),
        9 => {
            *next_row_id += 1;
            let id = *next_row_id;
            SheetOp::AppendRows {
                rows: vec![Tuple::new(vec![
                    Value::Int(id),
                    Value::str(format!("Gen{id}")),
                    Value::Int(rng.gen_range(8_000..30_000i64)),
                    Value::Int(rng.gen_range(1999..2009i64)),
                ])],
            }
        }
        10 => SheetOp::DeleteRows {
            ids: vec![rng.gen_range(0..8u32)],
        },
        _ => SheetOp::UpdateCell {
            row: rng.gen_range(0..6u32),
            column: "Price".to_string(),
            value: Value::Int(rng.gen_range(8_000..30_000i64)),
        },
    }
}

fn parse(cmd: &str) -> SheetOp {
    SheetOp::parse_command(cmd).expect("generated command parses")
}

/// Run one seeded schedule; returns the converged fingerprint and how
/// many events the run committed (for the distribution sanity check).
fn run_case(seed: u64) -> usize {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.gen_range(2..4usize);
    let mut replicas: Vec<Replica> = (0..n)
        .map(|i| Replica::new(i as u64 + 1, base()).expect("replica"))
        .collect();
    let mut all_events: Vec<OpEvent> = Vec::new();
    let mut next_row_id = 100i64;

    let rounds = rng.gen_range(2..5usize);
    for _ in 0..rounds {
        // Everyone commits a few local ops (invalid ones are skipped —
        // commit already rejected them, so no event exists).
        for r in replicas.iter_mut() {
            for _ in 0..rng.gen_range(0..3usize) {
                let op = random_op(&mut rng, &mut next_row_id);
                if let Ok(event) = r.commit(op) {
                    all_events.push(event);
                }
            }
        }
        // Lossy gossip: each ordered pair syncs only sometimes
        // (partition), batches may be shuffled (reordering) and may be
        // delivered twice (duplicate delivery).
        for from in 0..n {
            for to in 0..n {
                if from == to || rng.gen_bool(0.4) {
                    continue;
                }
                let peer_vv = replicas[to].frontier_vv();
                let mut batch = replicas[from]
                    .events_since(&peer_vv)
                    .expect("no compaction in this schedule");
                rng.shuffle(&mut batch);
                replicas[to].merge(&batch).expect("merge");
                if rng.gen_bool(0.3) {
                    let outcome = replicas[to].merge(&batch).expect("re-merge");
                    assert_eq!(
                        outcome.added.len(),
                        0,
                        "duplicate delivery adopted events (seed {seed})"
                    );
                }
            }
        }
    }

    // Anti-entropy until quiescent: full-mesh exchange must converge in
    // a bounded number of sweeps once no new ops are committed.
    for sweep in 0..8 {
        let mut moved = false;
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let peer_vv = replicas[to].frontier_vv();
                let batch = replicas[from].events_since(&peer_vv).expect("events");
                if !batch.is_empty() {
                    moved = true;
                    replicas[to].merge(&batch).expect("merge");
                }
            }
        }
        if !moved {
            break;
        }
        assert!(sweep < 7, "anti-entropy did not quiesce (seed {seed})");
    }

    // Every replica equals the single-site oracle that merges the whole
    // event set once, in one arbitrary (shuffled) order.
    let mut oracle = Replica::new(99, base()).expect("oracle");
    rng.shuffle(&mut all_events);
    oracle.merge(&all_events).expect("oracle merge");
    let expected = oracle.fingerprint();
    for r in &replicas {
        assert_eq!(
            r.fingerprint(),
            expected,
            "replica {} diverged from oracle (seed {seed})",
            r.id()
        );
    }
    all_events.len()
}

#[test]
fn randomized_schedules_converge_to_single_site_oracle() {
    let cases: u64 = std::env::var("SSA_CONVERGENCE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let mut total_events = 0usize;
    for seed in 0..cases {
        total_events += run_case(0xD15C0 + seed);
    }
    // Distribution sanity: the generator must actually commit work, or
    // the convergence assertions are vacuous.
    assert!(
        total_events as u64 >= cases,
        "schedules committed too few events ({total_events} over {cases} cases)"
    );
}

/// Pinned Theorem-2 path: a concurrent pure-σ merges without replay
/// when everything it has to cross is selection-family.
#[test]
fn concurrent_selects_take_the_direct_commute_path() {
    let mut a = Replica::new(1, base()).expect("a");
    let mut b = Replica::new(2, base()).expect("b");
    let ea = a.commit(parse("select Price < 20000")).expect("commit a");
    let eb = b.commit(parse("select Year >= 2004")).expect("commit b");

    // The earlier key lands on top of the later one on exactly one side;
    // that side must merge via DirectCommute, and both end bitwise equal.
    let out_a = a.merge(std::slice::from_ref(&eb)).expect("merge into a");
    let out_b = b.merge(std::slice::from_ref(&ea)).expect("merge into b");
    assert!(
        matches!(out_a.path, MergePath::DirectCommute)
            || matches!(out_b.path, MergePath::DirectCommute),
        "one side must commute directly: {:?} / {:?}",
        out_a.path,
        out_b.path
    );
    assert_eq!(a.fingerprint(), b.fingerprint());
}

/// Pinned Theorem-3 path: a non-commuting pair (σ vs base delete it
/// would have to cross) forces the deterministic history rewrite, and
/// both orders agree.
#[test]
fn non_commuting_pair_rewrites_history_deterministically() {
    let mut a = Replica::new(1, base()).expect("a");
    let mut b = Replica::new(2, base()).expect("b");
    let ea = a.commit(parse("group Model asc")).expect("commit a");
    let eb = b
        .commit(SheetOp::DeleteRows { ids: vec![1] })
        .expect("commit b");
    let out_a = a.merge(&[eb]).expect("merge into a");
    let out_b = b.merge(&[ea]).expect("merge into b");
    assert!(
        matches!(out_a.path, MergePath::Rewritten) || matches!(out_b.path, MergePath::Rewritten),
        "at least one side must replay: {:?} / {:?}",
        out_a.path,
        out_b.path
    );
    assert_eq!(a.fingerprint(), b.fingerprint());
}

/// Pinned staleness rule: a peer whose frontier predates our compaction
/// horizon gets the typed `BehindCompaction` error, not a partial log.
#[test]
fn peer_behind_compaction_horizon_is_refused() {
    let mut a = Replica::new(1, base()).expect("a");
    a.commit(parse("select Price < 20000")).expect("commit");
    a.commit(parse("group Model asc")).expect("commit");
    assert!(a.can_compact());
    a.mark_compacted().expect("compact");
    let err = a
        .events_since(&VersionVector::new())
        .expect_err("stale peer must be refused");
    assert!(
        matches!(
            err,
            spreadsheet_algebra::SheetError::BehindCompaction { .. }
        ),
        "typed staleness error, got: {err}"
    );
    // An up-to-date peer still syncs fine.
    assert!(a.events_since(&a.frontier_vv()).expect("fresh").is_empty());
}
