//! Theorem 1, property-tested: every core single-block SQL query has an
//! equivalent spreadsheet-algebra program.
//!
//! We generate random relations and random core single-block statements
//! (respecting the Sec. IV-A constraints: projection ⊆ grouping, ordering
//! ⊆ projection ∪ aggregation), run both the SQL reference evaluator and
//! the seven-step translation, and check equivalence.

use sheetmusiq_repro::prelude::*;
use ssa_relation::rng::Rng;
use ssa_relation::schema::Schema;
use ssa_relation::ValueType::{Int, Str};
use ssa_relation::{Relation, Tuple};
use ssa_sql::{equivalent, eval_select, parse_select, translate};

/// Random relation over a fixed 4-column schema (two groupable string
/// columns, two numeric ones).
fn arb_relation(rng: &mut Rng) -> Relation {
    let schema = Schema::of(&[("g", Str), ("h", Str), ("x", Int), ("y", Int)]);
    let mut rel = Relation::new("t", schema);
    for _ in 0..rng.gen_range(0..40usize) {
        rel.insert(Tuple::new(vec![
            Value::from(format!("g{}", rng.gen_range(0..4i64))),
            Value::from(format!("h{}", rng.gen_range(0..3i64))),
            Value::Int(rng.gen_range(0..100i64)),
            Value::Int(rng.gen_range(0..50i64)),
        ]))
        .expect("widths match");
    }
    rel
}

/// Random WHERE conjunct over the schema.
fn arb_conjunct(rng: &mut Rng) -> String {
    match rng.gen_range(0..5usize) {
        0 => format!("g <> 'g{}'", rng.gen_range(0..4i64)),
        1 => format!("x < {}", rng.gen_range(0..100i64)),
        2 => format!("x >= {}", rng.gen_range(0..100i64)),
        3 => format!("y <= {}", rng.gen_range(0..50i64)),
        _ => "x + y > 60".to_string(),
    }
}

/// Order-preserving random subsequence of up to `max` elements.
fn arb_subsequence<'a>(rng: &mut Rng, pool: &[&'a str], max: usize) -> Vec<&'a str> {
    let want = rng.gen_range(0..max);
    let mut picked = Vec::new();
    for item in pool {
        if picked.len() < want && rng.gen_bool(want as f64 / pool.len() as f64) {
            picked.push(*item);
        }
    }
    picked
}

/// A random core single-block statement as SQL text.
fn arb_statement(rng: &mut Rng) -> String {
    let conjuncts: Vec<String> = (0..rng.gen_range(0..3usize))
        .map(|_| arb_conjunct(rng))
        .collect();
    let group_by: Vec<&str> = match rng.gen_range(0..3usize) {
        0 => Vec::new(),
        1 => vec!["g"],
        _ => vec!["g", "h"],
    };
    let aggs = arb_subsequence(
        rng,
        &["SUM(x)", "AVG(y)", "COUNT(*)", "MIN(x)", "MAX(y)"],
        3,
    );
    let want_having = rng.gen_bool(0.5);
    let want_order = rng.gen_bool(0.5);
    let desc = rng.gen_bool(0.5);

    let grouped = !group_by.is_empty();
    // SELECT list: grouping columns (so projection ⊆ grouping) +
    // aggregates; ungrouped queries with no aggregates select raw
    // columns.
    let mut items: Vec<String> = if grouped {
        group_by.iter().map(|s| s.to_string()).collect()
    } else if aggs.is_empty() {
        vec!["g".into(), "x".into(), "y".into()]
    } else {
        vec![]
    };
    let mut aggs = aggs;
    if grouped && aggs.is_empty() && want_having {
        aggs.push("COUNT(*)");
    }
    items.extend(aggs.iter().map(|s| s.to_string()));
    if items.is_empty() {
        items.push("COUNT(*)".into());
        aggs.push("COUNT(*)");
    }

    let mut sql = format!("SELECT {} FROM t", items.join(", "));
    if !conjuncts.is_empty() {
        sql.push_str(&format!(" WHERE {}", conjuncts.join(" AND ")));
    }
    if grouped {
        sql.push_str(&format!(" GROUP BY {}", group_by.join(", ")));
    }
    if want_having && grouped && !aggs.is_empty() {
        sql.push_str(&format!(" HAVING {} >= 0", canonical(aggs[0])));
    }
    if want_order {
        // ordering-list ⊆ projection ∪ aggregation
        let target = items[0].clone();
        sql.push_str(&format!(
            " ORDER BY {target}{}",
            if desc { " DESC" } else { "" }
        ));
    }
    sql
}

/// The canonical aggregate-output name used by both sides.
fn canonical(agg: &str) -> &'static str {
    match agg {
        "SUM(x)" => "Sum_x",
        "AVG(y)" => "Avg_y",
        "COUNT(*)" => "Count",
        "MIN(x)" => "Min_x",
        "MAX(y)" => "Max_y",
        other => panic!("unknown aggregate {other}"),
    }
}

#[test]
fn theorem1_translation_is_equivalent() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xE991 ^ case);
        let rel = arb_relation(&mut rng);
        let sql = arb_statement(&mut rng);
        let stmt = parse_select(&sql).expect("generated SQL is core single-block");
        let mut catalog = Catalog::new();
        catalog.register(rel).expect("fresh catalog");

        let reference = eval_select(&stmt, &catalog).expect("reference evaluates");
        let translated = translate(&stmt, &catalog).expect("translation succeeds");
        let sheet_result = translated.result().expect("sheet evaluates");

        assert!(
            equivalent(&stmt, &reference, &sheet_result),
            "case {case}: not equivalent for `{sql}`:\nSQL rows: {}\nsheet rows: {}",
            reference.len(),
            sheet_result.len()
        );
    }
}

#[test]
fn sql_evaluator_is_deterministic() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xD881 ^ case);
        let rel = arb_relation(&mut rng);
        let sql = arb_statement(&mut rng);
        let stmt = parse_select(&sql).expect("generated SQL parses");
        let mut catalog = Catalog::new();
        catalog.register(rel).expect("fresh catalog");
        let a = eval_select(&stmt, &catalog).expect("evaluates");
        let b = eval_select(&stmt, &catalog).expect("evaluates");
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn theorem1_two_relation_product() {
    // Multi-relation FROM exercises step 1 (product) + join predicates in
    // WHERE (step 2); kept deterministic because products over random
    // relations explode.
    let mut catalog = Catalog::new();
    let mut left = Relation::new("l", Schema::of(&[("k", Int), ("v", Str)]));
    let mut right = Relation::new("r", Schema::of(&[("k2", Int), ("w", Str)]));
    for i in 0..6 {
        left.insert(Tuple::new(vec![
            Value::Int(i % 3),
            Value::from(format!("v{i}")),
        ]))
        .unwrap();
        right
            .insert(Tuple::new(vec![
                Value::Int(i % 3),
                Value::from(format!("w{i}")),
            ]))
            .unwrap();
    }
    catalog.register(left).unwrap();
    catalog.register(right).unwrap();
    let stmt = parse_select("SELECT v, w FROM l, r WHERE k = k2").unwrap();
    let reference = eval_select(&stmt, &catalog).unwrap();
    let translated = translate(&stmt, &catalog).unwrap();
    let sheet_result = translated.result().unwrap();
    assert_eq!(reference.len(), 12); // 3 key groups of 2×2
    assert!(equivalent(&stmt, &reference, &sheet_result));
}
