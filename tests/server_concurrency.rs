//! Concurrent snapshot isolation for the sheet server (DESIGN.md §15).
//!
//! The server's contract: a session pinned to a published snapshot sees
//! *bitwise-identical* results no matter what the writer does — before,
//! during and after `append_rows`/`update_cell` commits — until the
//! session explicitly refreshes. Randomized interleavings are checked
//! against a single-site oracle (the same script replayed on a private
//! deep copy of the pinned base), and the fault-injected publish path
//! proves a failed write never corrupts what readers see.

use spreadsheet_algebra::Spreadsheet;
use ssa_relation::rng::Rng;
use ssa_relation::{Relation, Tuple};
use ssa_server::{session_over, SheetHost};
use ssa_tpch::{schema, FeedConfig, OrderFeed};
use std::sync::Arc;

/// Serialize against the process-global failpoint registry when it is
/// compiled in (armed sites leak across tests otherwise).
#[cfg(feature = "fault-injection")]
fn test_lock() -> Option<std::sync::MutexGuard<'static, ()>> {
    Some(ssa_relation::fault::lock())
}
#[cfg(not(feature = "fault-injection"))]
fn test_lock() -> Option<()> {
    None
}

fn orders(n: usize, seed: u64) -> (Relation, OrderFeed) {
    let mut feed = OrderFeed::new(
        FeedConfig {
            customers: (n / 50).max(5),
            ..FeedConfig::default()
        },
        seed,
    );
    let mut rel = Relation::new("orders", schema::orders());
    rel.append_rows(feed.batch(n))
        .expect("feed rows fit schema");
    (rel, feed)
}

/// Query-state ops a session may apply; invalid sequences are fine —
/// failed ops are transactional no-ops on both session and oracle.
const OPS: &[&str] = &[
    "group o_orderstatus asc",
    "group o_custkey asc",
    "regroup o_orderpriority desc",
    "ungroup",
    "order o_totalprice desc",
    "select o_totalprice < 150000",
    "select o_totalprice > 50000",
    "agg avg o_totalprice",
    "agg count o_orderkey",
    "formula margin = o_totalprice * 0.1",
    "dedup",
    "undo",
    "redo",
];

#[test]
fn reader_view_is_bitwise_stable_across_writer_commits() {
    let _guard = test_lock();
    let (base, mut feed) = orders(800, 11);
    let host = SheetHost::new(base);

    let mut slot = session_over(&host.snapshot());
    for op in [
        "group o_orderstatus asc",
        "agg avg o_totalprice",
        "select o_totalprice < 150000",
        "order o_totalprice desc",
    ] {
        slot.script.execute(op).expect("session op");
    }
    let baseline = slot.script.execute("show").expect("baseline view");

    // Writer streams commits on another thread; the pinned reader
    // re-evaluates its view between commits and must never see drift.
    std::thread::scope(|scope| {
        let host = &host;
        let rows: Vec<Tuple> = feed.batch(60);
        scope.spawn(move || {
            for (i, chunk) in rows.chunks(10).enumerate() {
                host.append_rows(chunk.to_vec()).expect("append commits");
                let version = host.snapshot().version;
                // A fresh value every round: a no-op update (same value)
                // rightly skips the commit + publish entirely.
                host.update_cell(
                    3,
                    "o_totalprice",
                    ssa_relation::Value::Float(10_000.5 + i as f64),
                )
                .expect("update commits");
                assert_eq!(host.snapshot().version, version + 1, "version is monotone");
            }
        });
        for _ in 0..12 {
            let view = slot.script.execute("show").expect("pinned view");
            assert_eq!(view, baseline, "pinned session saw a writer commit");
        }
    });
    assert_eq!(host.snapshot().version, 12, "6 appends + 6 updates");

    // Refresh re-pins to the latest snapshot: the query state survives
    // (Sec. V: it references base columns, not base rows) and the new
    // rows appear.
    slot.script
        .session
        .engine()
        .expect("engine")
        .sheet_mut()
        .rebase(Arc::clone(&host.snapshot().base))
        .expect("rebase onto latest snapshot");
    let refreshed = slot.script.execute("show").expect("refreshed view");
    assert_ne!(refreshed, baseline, "refresh must surface writer commits");
}

#[test]
fn interleaved_sessions_match_single_site_oracle() {
    let _guard = test_lock();
    let (base, mut feed) = orders(400, 23);
    let host = Arc::new(SheetHost::new(base));
    let mut rng = Rng::seed_from_u64(0x5EED_5E55);

    // Stagger session creation with writer commits so the sessions pin
    // different versions, then run their scripts concurrently.
    let mut planned = Vec::new();
    for _ in 0..6 {
        host.append_rows(feed.batch(25))
            .expect("interleaved append");
        let snapshot = host.snapshot();
        let script: Vec<&str> = (0..10).map(|_| *rng.pick(OPS)).collect();
        planned.push((snapshot, script));
    }

    let mut results = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (snapshot, script) in &planned {
            let host = Arc::clone(&host);
            handles.push(scope.spawn(move || {
                let mut slot = session_over(snapshot);
                let outputs: Vec<Option<String>> = script
                    .iter()
                    .map(|op| slot.script.execute(op).ok())
                    .collect();
                // Keep the writer busy underneath the readers.
                host.update_cell(1, "o_orderpriority", ssa_relation::Value::str("1-URGENT"))
                    .expect("concurrent update");
                let view = slot.script.execute("show").expect("session view");
                (outputs, view)
            }));
        }
        for h in handles {
            results.push(h.join().expect("session thread"));
        }
    });

    // Oracle: the same script on a private single-site copy of exactly
    // the base the session pinned.
    for ((snapshot, script), (outputs, view)) in planned.iter().zip(&results) {
        let mut oracle = session_over(snapshot);
        // Sever sharing: the oracle runs over its own deep copy.
        oracle
            .script
            .session
            .adopt(spreadsheet_algebra::Engine::from_sheet(Spreadsheet::over(
                (*snapshot.base).clone(),
            )));
        for (op, out) in script.iter().zip(outputs) {
            assert_eq!(
                &oracle.script.execute(op).ok(),
                out,
                "op `{op}` diverged from the single-site oracle"
            );
        }
        assert_eq!(
            &oracle.script.execute("show").expect("oracle view"),
            view,
            "final view diverged from the single-site oracle"
        );
    }
}

#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;
    use spreadsheet_algebra::SheetError;
    use ssa_relation::fault::{self, Behavior};
    use ssa_relation::RelationError;

    /// A publish failure (error or panic) after the write was applied
    /// must leave writer and readers agreeing on the pre-write state.
    #[test]
    fn failed_publish_never_corrupts_reader_snapshots() {
        let _guard = fault::lock();
        for behavior in [Behavior::Error, Behavior::Panic] {
            let (base, mut feed) = orders(200, 7);
            let host = SheetHost::new(base);
            let mut slot = session_over(&host.snapshot());
            slot.script
                .execute("group o_orderstatus asc")
                .expect("session op");
            let baseline = slot.script.execute("show").expect("baseline view");
            let before = host.snapshot();

            fault::arm("server.publish", 1, behavior);
            let err = host
                .append_rows(feed.batch(5))
                .expect_err("armed publish must fail");
            match behavior {
                Behavior::Error => assert!(
                    matches!(
                        err,
                        SheetError::Relation(RelationError::FaultInjected { .. })
                    ),
                    "got: {err}"
                ),
                Behavior::Panic => assert!(
                    matches!(
                        err,
                        SheetError::Relation(RelationError::WorkerPanicked { .. })
                    ),
                    "got: {err}"
                ),
                // This test only arms Error/Panic; Abort kills the
                // process and is exercised by the child-process crash
                // suite (crates/server/tests/crash_recovery.rs).
                Behavior::Abort => unreachable!("not armed here"),
            }

            // Readers: same snapshot object, same version, same view.
            let after = host.snapshot();
            assert_eq!(after.version, before.version, "version moved on failure");
            assert!(
                Arc::ptr_eq(&after.base, &before.base),
                "published base swapped on failure"
            );
            assert_eq!(
                slot.script.execute("show").expect("view after failure"),
                baseline,
                "reader view changed across a failed publish"
            );

            // The writer recovered: the failed rows are gone and the
            // next commit publishes exactly one batch at version+1.
            let (appended, version) = host.append_rows(feed.batch(3)).expect("next write");
            assert_eq!(appended, 3);
            assert_eq!(version, before.version + 1);
            assert_eq!(host.snapshot().base.len(), 200 + 3, "failed rows leaked");
        }
    }

    /// A fault on the accept path drops one connection; the server keeps
    /// serving every later connection.
    #[test]
    fn accept_fault_does_not_kill_the_server() {
        use std::io::{Read, Write};
        use std::net::TcpStream;

        let _guard = fault::lock();
        let state = Arc::new(ssa_server::ServerState::new());
        let (base, _) = orders(50, 3);
        state.create_sheet(base).expect("host sheet");
        let handle = ssa_server::serve(Arc::clone(&state), ("127.0.0.1", 0), 2)
            .expect("bind ephemeral port");
        let addr = handle.addr();

        let health = |expect_ok: bool| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            write!(
                stream,
                "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )
            .expect("send");
            let mut out = String::new();
            let got = stream.read_to_string(&mut out).unwrap_or(0);
            if expect_ok {
                assert!(out.contains("200 OK"), "healthy response, got: {out:?}");
            } else {
                assert_eq!(got, 0, "faulted connection should be dropped: {out:?}");
            }
        };

        health(true);
        fault::arm("server.accept", 1, Behavior::Error);
        health(false); // this one is dropped by the armed accept fault
        for _ in 0..3 {
            health(true); // and the server is still alive
        }
        handle.shutdown();
    }
}
