//! Theorem 3, property-tested: "modifying an operation in a sequence of
//! operations without point of non-commutativity through query state
//! change is the same as rewriting query history."
//!
//! We generate random operator histories over the used-car data, pick a
//! selection in the middle, and compare
//!
//! * path A — apply the whole history, then edit the retained predicate
//!   through query state ([`Spreadsheet::replace_selection`] /
//!   [`Spreadsheet::remove_selection`]);
//! * path B — replay the history from scratch with the edit applied at
//!   the original position.

use proptest::prelude::*;
use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::AlgebraOp;

fn arb_predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (13_000..19_000i64).prop_map(|v| Expr::col("Price").lt(Expr::lit(v))),
        (2004..2008i64).prop_map(|v| Expr::col("Year").eq(Expr::lit(v))),
        (20_000..100_000i64).prop_map(|v| Expr::col("Mileage").lt(Expr::lit(v))),
        proptest::sample::select(vec!["Jetta", "Civic"])
            .prop_map(|m| Expr::col("Model").eq(Expr::lit(m))),
    ]
}

/// History steps. Aggregates use base numeric columns only so that their
/// applicability never depends on the data (only on the grouping depth,
/// which selections cannot change) — a failed step then fails identically
/// on both paths.
fn arb_step() -> impl Strategy<Value = AlgebraOp> {
    prop_oneof![
        4 => arb_predicate().prop_map(|predicate| AlgebraOp::Select { predicate }),
        1 => proptest::sample::select(vec!["Model", "Condition", "Year"]).prop_map(|c| {
            AlgebraOp::Group { basis: vec![c.to_string()], order: Direction::Asc }
        }),
        1 => (
            proptest::sample::select(vec![AggFunc::Avg, AggFunc::Count, AggFunc::Max]),
            proptest::sample::select(vec!["Price", "Mileage"]),
            1usize..=2
        )
            .prop_map(|(func, column, level)| AlgebraOp::Aggregate {
                func,
                column: column.to_string(),
                level,
            }),
        1 => proptest::sample::select(vec!["Price", "Mileage", "ID"]).prop_map(|c| {
            AlgebraOp::Order { attribute: c.to_string(), order: Direction::Desc, level: 1 }
        }),
        1 => proptest::sample::select(vec!["Mileage", "Condition"])
            .prop_map(|c| AlgebraOp::Project { column: c.to_string() }),
        1 => Just(AlgebraOp::Dedup),
    ]
}

/// Apply a history; selections return their ids in order.
fn apply_history(sheet: &mut Spreadsheet, steps: &[AlgebraOp]) -> Vec<Option<u64>> {
    steps
        .iter()
        .map(|op| match op {
            AlgebraOp::Select { predicate } => sheet.select(predicate.clone()).ok(),
            other => {
                let _ = other.apply(sheet);
                None
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn theorem3_replace_equals_replay(
        steps in proptest::collection::vec(arb_step(), 1..8),
        pick in any::<prop::sample::Index>(),
        new_pred in arb_predicate(),
    ) {
        // Path A: full history, then state edit.
        let mut a = Spreadsheet::over(used_cars());
        let ids = apply_history(&mut a, &steps);
        let selections: Vec<(usize, u64)> = ids
            .iter()
            .enumerate()
            .filter_map(|(i, id)| id.map(|id| (i, id)))
            .collect();
        prop_assume!(!selections.is_empty());
        let (step_idx, sel_id) = selections[pick.index(selections.len())];
        a.replace_selection(sel_id, new_pred.clone()).expect("id is live");

        // Path B: replay with the edit at the original position.
        let mut b = Spreadsheet::over(used_cars());
        let mut edited = steps.clone();
        edited[step_idx] = AlgebraOp::Select { predicate: new_pred };
        apply_history(&mut b, &edited);

        prop_assert_eq!(a.evaluate_now(), b.evaluate_now());
    }

    #[test]
    fn theorem3_remove_equals_replay_without(
        steps in proptest::collection::vec(arb_step(), 1..8),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut a = Spreadsheet::over(used_cars());
        let ids = apply_history(&mut a, &steps);
        let selections: Vec<(usize, u64)> = ids
            .iter()
            .enumerate()
            .filter_map(|(i, id)| id.map(|id| (i, id)))
            .collect();
        prop_assume!(!selections.is_empty());
        let (step_idx, sel_id) = selections[pick.index(selections.len())];
        a.remove_selection(sel_id).expect("id is live");

        let mut b = Spreadsheet::over(used_cars());
        let mut edited = steps.clone();
        edited.remove(step_idx);
        apply_history(&mut b, &edited);

        prop_assert_eq!(a.evaluate_now(), b.evaluate_now());
    }

    #[test]
    fn reinstate_makes_projection_never_happen(
        steps in proptest::collection::vec(arb_step(), 0..6),
    ) {
        // Sec. V-B: "the semantics of the reinstatement are to rewrite
        // history, and make it as if the projection never took place."
        let mut a = Spreadsheet::over(used_cars());
        apply_history(&mut a, &steps);
        let hidden_before = a.state().projected_out.clone();
        if a.project_out("Price").is_ok() {
            a.reinstate("Price").expect("just hidden");
        }
        let mut b = Spreadsheet::over(used_cars());
        apply_history(&mut b, &steps);
        prop_assert_eq!(a.evaluate_now(), b.evaluate_now());
        prop_assert_eq!(&a.state().projected_out, &hidden_before);
    }
}

#[test]
fn modification_blocked_behind_binary_operator() {
    // Selections made before a union are consumed at the point of
    // non-commutativity: they are no longer in the modifiable state.
    let mut s = Spreadsheet::over(used_cars());
    let id = s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
    let stored = Spreadsheet::over(used_cars()).save("all").unwrap();
    s.union(&stored).unwrap();
    assert!(matches!(
        s.replace_selection(id, Expr::col("Model").eq(Expr::lit("Civic"))),
        Err(spreadsheet_algebra::SheetError::UnknownSelection { .. })
    ));
    // New selections after the point are modifiable as usual.
    let id2 = s.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
    s.replace_selection(id2, Expr::col("Year").eq(Expr::lit(2006)))
        .unwrap();
}
