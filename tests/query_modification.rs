//! Theorem 3, property-tested: "modifying an operation in a sequence of
//! operations without point of non-commutativity through query state
//! change is the same as rewriting query history."
//!
//! We generate random operator histories over the used-car data, pick a
//! selection in the middle, and compare
//!
//! * path A — apply the whole history, then edit the retained predicate
//!   through query state ([`Spreadsheet::replace_selection`] /
//!   [`Spreadsheet::remove_selection`]);
//! * path B — replay the history from scratch with the edit applied at
//!   the original position.

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::AlgebraOp;
use ssa_relation::rng::Rng;

fn arb_predicate(rng: &mut Rng) -> Expr {
    match rng.gen_range(0..4usize) {
        0 => Expr::col("Price").lt(Expr::lit(rng.gen_range(13_000..19_000i64))),
        1 => Expr::col("Year").eq(Expr::lit(rng.gen_range(2004..2008i64))),
        2 => Expr::col("Mileage").lt(Expr::lit(rng.gen_range(20_000..100_000i64))),
        _ => Expr::col("Model").eq(Expr::lit(*rng.pick(&["Jetta", "Civic"]))),
    }
}

/// History steps, selection-weighted 4:5 like the original generator.
/// Aggregates use base numeric columns only so that their applicability
/// never depends on the data (only on the grouping depth, which selections
/// cannot change) — a failed step then fails identically on both paths.
fn arb_step(rng: &mut Rng) -> AlgebraOp {
    match rng.gen_range(0..9usize) {
        0..=3 => AlgebraOp::Select {
            predicate: arb_predicate(rng),
        },
        4 => AlgebraOp::Group {
            basis: vec![rng.pick(&["Model", "Condition", "Year"]).to_string()],
            order: Direction::Asc,
        },
        5 => AlgebraOp::Aggregate {
            func: *rng.pick(&[AggFunc::Avg, AggFunc::Count, AggFunc::Max]),
            column: rng.pick(&["Price", "Mileage"]).to_string(),
            level: rng.gen_range(1..=2usize),
        },
        6 => AlgebraOp::Order {
            attribute: rng.pick(&["Price", "Mileage", "ID"]).to_string(),
            order: Direction::Desc,
            level: 1,
        },
        7 => AlgebraOp::Project {
            column: rng.pick(&["Mileage", "Condition"]).to_string(),
        },
        _ => AlgebraOp::Dedup,
    }
}

fn arb_steps(rng: &mut Rng, lo: usize, hi: usize) -> Vec<AlgebraOp> {
    (0..rng.gen_range(lo..hi)).map(|_| arb_step(rng)).collect()
}

/// Apply a history; selections return their ids in order.
fn apply_history(sheet: &mut Spreadsheet, steps: &[AlgebraOp]) -> Vec<Option<u64>> {
    steps
        .iter()
        .map(|op| match op {
            AlgebraOp::Select { predicate } => sheet.select(predicate.clone()).ok(),
            other => {
                let _ = other.apply(sheet);
                None
            }
        })
        .collect()
}

#[test]
fn theorem3_replace_equals_replay() {
    for case in 0..192u64 {
        let mut rng = Rng::seed_from_u64(0x3A01 ^ case);
        let steps = arb_steps(&mut rng, 1, 8);
        let new_pred = arb_predicate(&mut rng);
        // Path A: full history, then state edit.
        let mut a = Spreadsheet::over(used_cars());
        let ids = apply_history(&mut a, &steps);
        let selections: Vec<(usize, u64)> = ids
            .iter()
            .enumerate()
            .filter_map(|(i, id)| id.map(|id| (i, id)))
            .collect();
        if selections.is_empty() {
            continue;
        }
        let (step_idx, sel_id) = selections[rng.gen_range(0..selections.len())];
        a.replace_selection(sel_id, new_pred.clone())
            .expect("id is live");

        // Path B: replay with the edit at the original position.
        let mut b = Spreadsheet::over(used_cars());
        let mut edited = steps.clone();
        edited[step_idx] = AlgebraOp::Select {
            predicate: new_pred,
        };
        apply_history(&mut b, &edited);

        assert_eq!(a.evaluate_now(), b.evaluate_now(), "case {case}");
    }
}

#[test]
fn theorem3_remove_equals_replay_without() {
    for case in 0..192u64 {
        let mut rng = Rng::seed_from_u64(0x3B02 ^ case);
        let steps = arb_steps(&mut rng, 1, 8);
        let mut a = Spreadsheet::over(used_cars());
        let ids = apply_history(&mut a, &steps);
        let selections: Vec<(usize, u64)> = ids
            .iter()
            .enumerate()
            .filter_map(|(i, id)| id.map(|id| (i, id)))
            .collect();
        if selections.is_empty() {
            continue;
        }
        let (step_idx, sel_id) = selections[rng.gen_range(0..selections.len())];
        a.remove_selection(sel_id).expect("id is live");

        let mut b = Spreadsheet::over(used_cars());
        let mut edited = steps.clone();
        edited.remove(step_idx);
        apply_history(&mut b, &edited);

        assert_eq!(a.evaluate_now(), b.evaluate_now(), "case {case}");
    }
}

#[test]
fn reinstate_makes_projection_never_happen() {
    // Sec. V-B: "the semantics of the reinstatement are to rewrite
    // history, and make it as if the projection never took place."
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x3C03 ^ case);
        let steps = arb_steps(&mut rng, 0, 6);
        let mut a = Spreadsheet::over(used_cars());
        apply_history(&mut a, &steps);
        let hidden_before = a.state().projected_out.clone();
        if a.project_out("Price").is_ok() {
            a.reinstate("Price").expect("just hidden");
        }
        let mut b = Spreadsheet::over(used_cars());
        apply_history(&mut b, &steps);
        assert_eq!(a.evaluate_now(), b.evaluate_now(), "case {case}");
        assert_eq!(&a.state().projected_out, &hidden_before, "case {case}");
    }
}

#[test]
fn modification_blocked_behind_binary_operator() {
    // Selections made before a union are consumed at the point of
    // non-commutativity: they are no longer in the modifiable state.
    let mut s = Spreadsheet::over(used_cars());
    let id = s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
    let stored = Spreadsheet::over(used_cars()).save("all").unwrap();
    s.union(&stored).unwrap();
    assert!(matches!(
        s.replace_selection(id, Expr::col("Model").eq(Expr::lit("Civic"))),
        Err(spreadsheet_algebra::SheetError::UnknownSelection { .. })
    ));
    // New selections after the point are modifiable as usual.
    let id2 = s.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
    s.replace_selection(id2, Expr::col("Year").eq(Expr::lit(2006)))
        .unwrap();
}
