//! Transactional-edit guarantees (DESIGN.md §12).
//!
//! Every mutating `Spreadsheet` operation is atomic: if it returns `Err`
//! — whether from its own validation, from the bounded trial evaluation,
//! or from an injected fault — the sheet is a perfect no-op versus its
//! pre-edit self: same state, same epoch, and a subsequent `view()`
//! yields the identical derived result.
//!
//! The `injected` module (compiled under `--features fault-injection`)
//! drives randomized edit sequences where every operation is attempted
//! twice: once with a failpoint armed, once clean, with a naive-engine
//! oracle replaying the clean applications alongside.

mod common;

#[cfg(feature = "fault-injection")]
use common::{arb_op, arb_sheet};
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::prelude::*;
use spreadsheet_algebra::{ComputedColumn, SheetError};

/// Serialize against the fault-injection registry when it is compiled
/// in: armed sites are process-global, so tests that arm (or might trip)
/// them must not interleave. Without the feature there is nothing to
/// serialize.
#[cfg(feature = "fault-injection")]
fn test_lock() -> Option<std::sync::MutexGuard<'static, ()>> {
    Some(ssa_relation::fault::lock())
}
#[cfg(not(feature = "fault-injection"))]
fn test_lock() -> Option<()> {
    None
}

/// The two sheets are indistinguishable: same query state, same epoch,
/// and the same evaluated view.
fn assert_identical(a: &mut Spreadsheet, b: &mut Spreadsheet, ctx: &str) {
    assert_eq!(a.state(), b.state(), "{ctx}: state diverged");
    assert_eq!(a.epoch(), b.epoch(), "{ctx}: epoch diverged");
    let va = a.view().expect("left view").clone();
    let vb = b.view().expect("right view");
    assert_eq!(&va, vb, "{ctx}: view diverged");
}

#[test]
fn naturally_failing_edits_are_perfect_no_ops() {
    let _guard = test_lock();
    let mut s = Spreadsheet::over(used_cars());
    s.group(&["Model"], Direction::Asc).unwrap();
    let avg = s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    s.view().unwrap();
    let mut baseline = s.clone();

    // One representative failure per operator family.
    assert!(s.select(Expr::col("Ghost").lt(Expr::lit(1))).is_err());
    assert!(s.group(&["Model"], Direction::Asc).is_err()); // not a strict superset
    assert!(s.ungroup().is_err()); // aggregate depends on the grouping
    assert!(s.regroup(&["Year"], Direction::Asc).is_err()); // ditto
    assert!(s.aggregate(AggFunc::Avg, "Model", 2).is_err()); // non-numeric
    assert!(s.formula(Some(&avg), Expr::lit(1)).is_err()); // duplicate name
    assert!(s
        .formula(None, Expr::col("Ghost").add(Expr::lit(1)))
        .is_err());
    assert!(s.order("Price", Direction::Asc, 9).is_err()); // no such level
    assert!(s.project_out("Ghost").is_err());
    assert!(s.reinstate("Price").is_err()); // not hidden
    assert!(s.rename("Ghost", "G2").is_err());
    assert!(s.rename("Price", "Model").is_err()); // target exists
    assert!(s.remove_selection(999).is_err());
    assert!(s.replace_selection(999, Expr::lit(true)).is_err());
    assert!(s.remove_computed("Price").is_err()); // not computed

    assert_identical(&mut s, &mut baseline, "after natural failures");
}

#[test]
fn trial_evaluation_rejects_edits_that_cannot_evaluate() {
    let _guard = test_lock();
    let mut s = Spreadsheet::over(used_cars());
    s.view().unwrap();
    let mut baseline = s.clone();

    // Columns all exist, so static validation passes — only the trial
    // evaluation can catch the division by zero. Before edits were
    // transactional this committed and poisoned every later `view`.
    let zero = Expr::col("Year").sub(Expr::col("Year"));
    let res = s.formula(Some("Bad"), Expr::col("Price").div(zero));
    assert!(res.is_err(), "divide-by-zero formula must be refused");
    assert_identical(&mut s, &mut baseline, "after rejected formula");

    // The sheet is fully usable afterwards.
    s.select(Expr::col("Price").lt(Expr::lit(20_000))).unwrap();
    assert!(s.view().is_ok());
}

#[test]
fn failed_binary_operator_leaves_epoch_and_state_alone() {
    let _guard = test_lock();
    let mut s = Spreadsheet::over(used_cars());
    s.select(Expr::col("Year").ge(Expr::lit(2004))).unwrap();
    s.view().unwrap();
    let mut baseline = s.clone();

    // Dealers has a different schema: union/difference are incompatible.
    let other = Spreadsheet::over(spreadsheet_algebra::fixtures::dealers())
        .save("dealers")
        .unwrap();
    assert!(matches!(
        s.union(&other),
        Err(SheetError::NotCompatible { .. })
    ));
    assert!(matches!(
        s.difference(&other),
        Err(SheetError::NotCompatible { .. })
    ));
    assert!(s.join(&other, Expr::col("Ghost").eq(Expr::lit(1))).is_err());
    assert_identical(&mut s, &mut baseline, "after failed binary operators");
}

#[test]
fn open_validates_stored_sheets() {
    let _guard = test_lock();
    let s = Spreadsheet::over(used_cars());
    let stored = s.save("cars").unwrap();
    assert!(Spreadsheet::open(&stored).is_ok());

    // A computed column referencing a column the relation doesn't have.
    let mut bad = stored.clone();
    bad.state.computed.push(ComputedColumn::formula(
        "Broken",
        Expr::col("Ghost").add(Expr::lit(1)),
    ));
    assert!(matches!(
        Spreadsheet::open(&bad),
        Err(SheetError::InvalidStored { .. })
    ));

    // A computed column clashing with a base column.
    let mut clash = stored.clone();
    clash
        .state
        .computed
        .push(ComputedColumn::formula("Price", Expr::lit(1)));
    assert!(matches!(
        Spreadsheet::open(&clash),
        Err(SheetError::InvalidStored { .. })
    ));

    // Mutually recursive computed definitions.
    let mut cyclic = stored.clone();
    cyclic.state.computed.push(ComputedColumn::formula(
        "A",
        Expr::col("B").add(Expr::lit(1)),
    ));
    cyclic.state.computed.push(ComputedColumn::formula(
        "B",
        Expr::col("A").add(Expr::lit(1)),
    ));
    assert!(matches!(
        Spreadsheet::open(&cyclic),
        Err(SheetError::InvalidStored { .. })
    ));

    // An ordering key over a ghost column.
    let mut bad_order = stored.clone();
    bad_order
        .state
        .spec
        .finest_order
        .push(OrderKey::new("Ghost", Direction::Asc));
    assert!(matches!(
        Spreadsheet::open(&bad_order),
        Err(SheetError::InvalidStored { .. })
    ));
}

#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;
    use ssa_relation::fault::{self, Behavior};
    use ssa_relation::rng::Rng;
    use ssa_relation::{Relation, RelationError, Schema, Tuple, Value, ValueType};

    /// Every named failpoint the library crates expose.
    const SITES: &[&str] = &[
        "eval.filter",
        "eval.materialize",
        "eval.gather",
        "delta.classify",
        "delta.narrow",
        "delta.append",
        "delta.remove",
        "delta.base_append",
        "delta.base_retract",
        "ops.product",
        "ops.join",
        "ops.union",
        "ops.difference",
        "par.chunk",
        "persist.save",
        "persist.open",
        "persist.bin_write",
        "persist.bin_read",
    ];

    /// The tentpole pin: randomized edit sequences where every operation
    /// is attempted twice — once against a scratch clone with a failpoint
    /// armed, once clean against the main sheet and a naive-engine
    /// oracle. An injected `Err` must be a perfect no-op; an `Ok` (the
    /// site was off-path, or `view`'s fallback masked it) must match the
    /// clean application exactly.
    #[test]
    fn randomized_injected_edits_are_atomic() {
        let _guard = fault::lock();
        let mut rng = Rng::seed_from_u64(0xA70_311C_17E5);
        for case in 0..40u64 {
            let mut sheet = arb_sheet(&mut rng);
            sheet.view().unwrap(); // warm the cache so delta sites are reachable
            let mut oracle = sheet.clone();
            oracle.set_naive_eval(true);
            for step in 0..4u64 {
                let op = arb_op(&mut rng);
                let site = SITES[rng.gen_range(0..SITES.len())];
                let nth = rng.gen_range(1..=2u64);
                let ctx = format!("case {case} step {step} op {op:?} site {site}@{nth}");

                // Attempt 1: fault-injected, on a scratch clone.
                let mut scratch = sheet.clone();
                fault::arm(site, nth, Behavior::Error);
                let injected = op.apply(&mut scratch);
                fault::disarm(site);
                if injected.is_err() {
                    assert_identical(&mut scratch, &mut sheet.clone(), &ctx);
                }

                // Attempt 2: clean, on the main sheet and the oracle.
                let clean = op.apply(&mut sheet);
                let oracle_res = op.apply(&mut oracle);
                assert_eq!(clean.is_ok(), oracle_res.is_ok(), "{ctx}: outcome split");
                if clean.is_ok() {
                    let view = sheet.view().unwrap().clone();
                    let oracle_view = oracle.view().unwrap();
                    assert_eq!(&view, oracle_view, "{ctx}: engines diverged");
                    if injected.is_ok() {
                        // The armed attempt committed; it must have
                        // produced exactly the clean result.
                        assert_identical(&mut scratch, &mut sheet.clone(), &ctx);
                    }
                }
            }
        }
    }

    #[test]
    fn injected_binary_operator_failures_roll_back_completely() {
        let _guard = fault::lock();
        let mut base = Spreadsheet::over(used_cars());
        base.select(Expr::col("Year").ge(Expr::lit(2004))).unwrap();
        base.view().unwrap();
        let stored = Spreadsheet::over(used_cars()).save("other").unwrap();

        for site in ["ops.union", "eval.filter", "eval.materialize"] {
            let mut s = base.clone();
            fault::arm(site, 1, Behavior::Error);
            let res = s.union(&stored);
            fault::disarm(site);
            if res.is_err() {
                assert_identical(&mut s, &mut base.clone(), site);
            } else {
                // Only sites off the evaluation path may be missed.
                assert_ne!(site, "ops.union", "ops.union must be on the union path");
            }
        }

        // A fault *after* the combine — in the trial evaluation of the
        // committed epoch — must also restore the pre-union sheet.
        let mut s = base.clone();
        fault::arm("eval.filter", 2, Behavior::Error);
        let res = s.union(&stored);
        fault::disarm("eval.filter");
        if res.is_err() {
            assert_identical(&mut s, &mut base.clone(), "trial-eval fault");
        }
    }

    /// Satellite pin (DESIGN.md §14): a fault injected mid-way through a
    /// streaming base-data patch must leave the sheet at its pre-edit
    /// snapshot — base relation, query state, epoch and evaluated view
    /// all bitwise identical — even though the base row was already
    /// appended (or removed, or overwritten) when the failpoint tripped.
    #[test]
    fn injected_base_edit_failures_roll_back_completely() {
        let _guard = fault::lock();
        let mut base = Spreadsheet::over(used_cars());
        base.group(&["Model"], Direction::Asc).unwrap();
        base.aggregate(AggFunc::Avg, "Price", 2).unwrap();
        base.order("Price", Direction::Asc, 2).unwrap();
        base.view().unwrap(); // warm: the failing edits patch, not re-evaluate

        // Append: the row is in the base when the failpoint fires; the
        // rollback must pull it back out.
        let mut s = base.clone();
        fault::arm("delta.base_append", 1, Behavior::Error);
        let res = s.append_rows(vec![ssa_relation::tuple![
            999, "Jetta", 15_500, 2005, 60_000, "Good"
        ]]);
        fault::disarm("delta.base_append");
        assert!(res.is_err(), "armed append must surface the fault");
        assert_eq!(s.base().len(), 9, "appended row must be rolled back");
        assert_identical(&mut s, &mut base.clone(), "failed append");

        // Delete: the rows are already out of the base; the rollback
        // reinserts them at their original positions.
        let mut s = base.clone();
        fault::arm("delta.base_retract", 1, Behavior::Error);
        let res = s.delete_rows(&[1, 4]);
        fault::disarm("delta.base_retract");
        assert!(res.is_err(), "armed delete must surface the fault");
        assert_eq!(s.base().len(), 9, "deleted rows must be reinserted");
        assert_identical(&mut s, &mut base.clone(), "failed delete");

        // Update: the cell already holds the new value; the rollback
        // restores the old one.
        let mut s = base.clone();
        fault::arm("delta.base_retract", 1, Behavior::Error);
        let res = s.update_cell(0, "Price", Value::Int(1));
        fault::disarm("delta.base_retract");
        assert!(res.is_err(), "armed update must surface the fault");
        assert_eq!(
            s.base().value_at(0, "Price").unwrap(),
            base.base().value_at(0, "Price").unwrap(),
            "updated cell must be restored"
        );
        assert_identical(&mut s, &mut base.clone(), "failed update");

        // All three sheets remain fully usable: a clean replay of each
        // edit succeeds and matches a naive-engine application.
        let mut s = base.clone();
        let mut oracle = base.clone();
        oracle.set_naive_eval(true);
        s.append_rows(vec![ssa_relation::tuple![
            999, "Jetta", 15_500, 2005, 60_000, "Good"
        ]])
        .unwrap();
        oracle
            .append_rows(vec![ssa_relation::tuple![
                999, "Jetta", 15_500, 2005, 60_000, "Good"
            ]])
            .unwrap();
        s.update_cell(9, "Price", Value::Int(15_750)).unwrap();
        oracle.update_cell(9, "Price", Value::Int(15_750)).unwrap();
        s.delete_rows(&[2]).unwrap();
        oracle.delete_rows(&[2]).unwrap();
        assert_eq!(
            s.view().unwrap(),
            oracle.view().unwrap(),
            "clean replay diverged from the naive oracle"
        );
    }

    /// Satellite pin: a worker panic inside a parallel chunk surfaces as
    /// a typed `WorkerPanicked` error — no process abort — and the sheet
    /// is fully usable afterwards.
    #[test]
    fn worker_panic_surfaces_as_typed_error_and_sheet_survives() {
        let _guard = fault::lock();
        let rows: Vec<Tuple> = (0..10_000i64)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 7)]))
            .collect();
        let relation = Relation::with_rows(
            "big",
            Schema::of(&[("A", ValueType::Int), ("B", ValueType::Int)]),
            rows,
        )
        .unwrap();
        let mut s = Spreadsheet::over(relation);
        s.select(Expr::col("B").lt(Expr::lit(5))).unwrap();
        let mut witness = s.clone();
        let expected = witness.view().unwrap().clone();

        // 10k rows is above the default 8192-row parallel threshold, so
        // evaluation fans out and the armed failpoint panics a worker.
        fault::arm("par.chunk", 1, Behavior::Panic);
        let err = s.view().expect_err("worker panic must surface as Err");
        match err {
            SheetError::Relation(RelationError::WorkerPanicked { site }) => {
                assert!(site.contains("par.chunk"), "payload names the site: {site}")
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        fault::disarm("par.chunk");

        // The sheet recovers: the next view evaluates from scratch.
        assert_eq!(s.view().unwrap(), &expected);
        assert_eq!(s.state(), witness.state());
    }

    #[test]
    fn persist_failpoints_surface_typed_errors() {
        let _guard = fault::lock();
        let stored = Spreadsheet::over(used_cars()).save("cars").unwrap();

        fault::arm("persist.save", 1, Behavior::Error);
        assert!(stored.to_json().is_err());
        let json = stored.to_json().unwrap(); // failpoint auto-disarmed

        fault::arm("persist.open", 1, Behavior::Error);
        assert!(StoredSheet::from_json(&json).is_err());
        assert_eq!(StoredSheet::from_json(&json).unwrap(), stored);

        // The binary codec's sites surface the same way.
        fault::arm("persist.save", 1, Behavior::Error);
        assert!(stored.to_binary().is_err());
        let bin = stored.to_binary().unwrap();

        fault::arm("persist.bin_read", 1, Behavior::Error);
        let path =
            std::env::temp_dir().join(format!("ssa_binread_fp_{}.sheet", std::process::id()));
        std::fs::write(&path, &bin).unwrap();
        assert!(StoredSheet::open_path(&path).is_err());
        assert_eq!(StoredSheet::open_path(&path).unwrap(), stored);
        std::fs::remove_file(&path).ok();
    }

    /// The §16 atomic-save pin: a save that fails at either
    /// `persist.bin_write` arming point — before the temp file is
    /// written (hit 1) or after it is written but before the rename
    /// (hit 2) — leaves the previous file byte-identical and leaves no
    /// temp file behind.
    #[test]
    fn failed_binary_save_never_clobbers_previous_file() {
        let _guard = fault::lock();
        let dir = std::env::temp_dir().join(format!("ssa_atomic_save_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cars.sheet");

        let first = Spreadsheet::over(used_cars()).save("cars-v1").unwrap();
        first.save_path(&path).unwrap();
        let baseline = std::fs::read(&path).unwrap();

        let mut changed = Spreadsheet::over(used_cars());
        changed
            .select(Expr::col("Price").lt(Expr::lit(15_000)))
            .unwrap();
        let second = changed.save("cars-v2").unwrap();

        for nth in 1..=2u64 {
            fault::arm("persist.bin_write", nth, Behavior::Error);
            let err = second.save_path(&path).expect_err("armed save must fail");
            assert!(
                matches!(
                    err,
                    SheetError::Relation(RelationError::FaultInjected { .. })
                ),
                "hit {nth}: {err}"
            );
            assert_eq!(
                std::fs::read(&path).unwrap(),
                baseline,
                "hit {nth} clobbered the previous file"
            );
            let leftovers: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n != "cars.sheet")
                .collect();
            assert!(
                leftovers.is_empty(),
                "hit {nth} left temp files: {leftovers:?}"
            );
        }

        // Disarmed, the save goes through and replaces the file whole.
        second.save_path(&path).unwrap();
        let reopened = StoredSheet::open_path(&path).unwrap();
        assert_eq!(reopened, second);
        std::fs::remove_dir_all(&dir).ok();
    }
}
