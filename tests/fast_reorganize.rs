//! The reorganize fast path: when only grouping/ordering/projection
//! changed, `view()` re-sorts the cached evaluation instead of rerunning
//! the canonical pipeline. These tests pin that the fast path is
//! *observationally identical* to full evaluation.

use proptest::prelude::*;
use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::AlgebraOp;

fn arb_op() -> impl Strategy<Value = AlgebraOp> {
    prop_oneof![
        // content-changing
        (13_000..19_000i64)
            .prop_map(|v| AlgebraOp::Select { predicate: Expr::col("Price").lt(Expr::lit(v)) }),
        (
            proptest::sample::select(vec![AggFunc::Avg, AggFunc::Count, AggFunc::Max]),
            1usize..=3
        )
            .prop_map(|(func, level)| AlgebraOp::Aggregate {
                func,
                column: "Price".into(),
                level,
            }),
        Just(AlgebraOp::Dedup),
        // organization-only (the fast-path triggers)
        proptest::sample::select(vec!["Model", "Condition", "Year"]).prop_map(|c| {
            AlgebraOp::Group { basis: vec![c.to_string()], order: Direction::Desc }
        }),
        (
            proptest::sample::select(vec!["Price", "Mileage", "ID", "Year"]),
            1usize..=3
        )
            .prop_map(|(c, level)| AlgebraOp::Order {
                attribute: c.to_string(),
                order: Direction::Asc,
                level,
            }),
        proptest::sample::select(vec!["Mileage", "Condition"])
            .prop_map(|c| AlgebraOp::Project { column: c.to_string() }),
        proptest::sample::select(vec!["Mileage", "Condition"])
            .prop_map(|c| AlgebraOp::Reinstate { column: c.to_string() }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After every step of a random session, the cached/fast-path `view`
    /// equals a from-scratch evaluation — with the fast path both on and
    /// off.
    #[test]
    fn view_always_equals_full_evaluation(
        ops in proptest::collection::vec(arb_op(), 0..10),
        fast in any::<bool>(),
    ) {
        let mut sheet = Spreadsheet::over(used_cars());
        sheet.set_fast_reorganize(fast);
        // prime the cache so later ops hit the reorganize/reuse branches
        let _ = sheet.view();
        for op in &ops {
            if op.apply(&mut sheet).is_ok() {
                let fresh = sheet.evaluate_now().expect("state is valid");
                let viewed = sheet.view().expect("view succeeds").clone();
                prop_assert_eq!(viewed, fresh);
            }
        }
    }

    /// Interleaving reads must not change results either (cache reuse).
    #[test]
    fn repeated_views_are_stable(ops in proptest::collection::vec(arb_op(), 0..8)) {
        let mut sheet = Spreadsheet::over(used_cars());
        for op in &ops {
            let _ = op.apply(&mut sheet);
            let a = sheet.view().expect("view").clone();
            let b = sheet.view().expect("view").clone();
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn reorganize_path_handles_grouping_then_ordering_then_projection() {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.select(Expr::col("Year").ge(Expr::lit(2005))).unwrap();
    sheet.aggregate(AggFunc::Avg, "Price", 1).unwrap();
    let full = sheet.view().unwrap().clone(); // primes the cache

    // Organization-only edits from here on: all fast-path.
    sheet.group(&["Model"], Direction::Asc).unwrap();
    let grouped = sheet.view().unwrap().clone();
    assert_eq!(grouped, sheet.evaluate_now().unwrap());
    assert_eq!(grouped.len(), full.len());

    sheet.order("Price", Direction::Desc, 2).unwrap();
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }

    sheet.project_out("Mileage").unwrap();
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }
    sheet.reinstate("Mileage").unwrap();
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }

    // A content change falls back to the full pipeline.
    sheet.select(Expr::col("Condition").eq(Expr::lit("Good"))).unwrap();
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }
}

#[test]
fn binary_operator_discards_cache() {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.view().unwrap();
    let stored = Spreadsheet::over(used_cars()).save("all").unwrap();
    sheet.union(&stored).unwrap();
    assert_eq!(sheet.view().unwrap().len(), 18);
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }
}

#[test]
fn rename_discards_cache() {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.group(&["Model"], Direction::Asc).unwrap();
    sheet.view().unwrap();
    sheet.rename("Model", "Make").unwrap();
    let fresh = sheet.evaluate_now().unwrap();
    let v = sheet.view().unwrap();
    assert!(v.visible.contains(&"Make".to_string()));
    assert_eq!(*v, fresh);
}

#[test]
fn fast_path_tiebreak_matches_full_evaluation() {
    // Regression: a grouping+ordering arrangement followed by a
    // level-destroying ordering (Def. 4 case 1) leaves ties in the new
    // key; the fast path must break them by base order (like a full
    // evaluation), not by the previous presentation order.
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.view().unwrap(); // prime cache
    sheet.group(&["Condition"], Direction::Asc).unwrap();
    sheet.order("Price", Direction::Desc, 2).unwrap();
    sheet.view().unwrap(); // presentation now Condition/Price-ordered
    // destroys the Condition grouping; new finest order = Year only,
    // which has many ties
    sheet.order("Year", Direction::Asc, 1).unwrap();
    let fresh = sheet.evaluate_now().unwrap();
    assert_eq!(*sheet.view().unwrap(), fresh);
}
