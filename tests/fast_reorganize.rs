//! The reorganize fast path: when only grouping/ordering/projection
//! changed, `view()` re-sorts the cached evaluation instead of rerunning
//! the canonical pipeline. These tests pin that the fast path is
//! *observationally identical* to full evaluation.

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::AlgebraOp;
use ssa_relation::rng::Rng;

fn arb_op(rng: &mut Rng) -> AlgebraOp {
    match rng.gen_range(0..7usize) {
        // content-changing
        0 => AlgebraOp::Select {
            predicate: Expr::col("Price").lt(Expr::lit(rng.gen_range(13_000..19_000i64))),
        },
        1 => AlgebraOp::Aggregate {
            func: *rng.pick(&[AggFunc::Avg, AggFunc::Count, AggFunc::Max]),
            column: "Price".into(),
            level: rng.gen_range(1..=3usize),
        },
        2 => AlgebraOp::Dedup,
        // organization-only (the fast-path triggers)
        3 => AlgebraOp::Group {
            basis: vec![rng.pick(&["Model", "Condition", "Year"]).to_string()],
            order: Direction::Desc,
        },
        4 => AlgebraOp::Order {
            attribute: rng.pick(&["Price", "Mileage", "ID", "Year"]).to_string(),
            order: Direction::Asc,
            level: rng.gen_range(1..=3usize),
        },
        5 => AlgebraOp::Project {
            column: rng.pick(&["Mileage", "Condition"]).to_string(),
        },
        _ => AlgebraOp::Reinstate {
            column: rng.pick(&["Mileage", "Condition"]).to_string(),
        },
    }
}

/// After every step of a random session, the cached/fast-path `view`
/// equals a from-scratch evaluation — with the fast path both on and
/// off.
#[test]
fn view_always_equals_full_evaluation() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xFA57 ^ case);
        let ops: Vec<AlgebraOp> = (0..rng.gen_range(0..10usize))
            .map(|_| arb_op(&mut rng))
            .collect();
        let fast = rng.gen_bool(0.5);
        let mut sheet = Spreadsheet::over(used_cars());
        sheet.set_fast_reorganize(fast);
        // prime the cache so later ops hit the reorganize/reuse branches
        let _ = sheet.view();
        for op in &ops {
            if op.apply(&mut sheet).is_ok() {
                let fresh = sheet.evaluate_now().expect("state is valid");
                let viewed = sheet.view().expect("view succeeds").clone();
                assert_eq!(viewed, fresh, "case {case}");
            }
        }
    }
}

/// Interleaving reads must not change results either (cache reuse).
#[test]
fn repeated_views_are_stable() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x57AB ^ case);
        let ops: Vec<AlgebraOp> = (0..rng.gen_range(0..8usize))
            .map(|_| arb_op(&mut rng))
            .collect();
        let mut sheet = Spreadsheet::over(used_cars());
        for op in &ops {
            let _ = op.apply(&mut sheet);
            let a = sheet.view().expect("view").clone();
            let b = sheet.view().expect("view").clone();
            assert_eq!(a, b, "case {case}");
        }
    }
}

#[test]
fn reorganize_path_handles_grouping_then_ordering_then_projection() {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.select(Expr::col("Year").ge(Expr::lit(2005))).unwrap();
    sheet.aggregate(AggFunc::Avg, "Price", 1).unwrap();
    let full = sheet.view().unwrap().clone(); // primes the cache

    // Organization-only edits from here on: all fast-path.
    sheet.group(&["Model"], Direction::Asc).unwrap();
    let grouped = sheet.view().unwrap().clone();
    assert_eq!(grouped, sheet.evaluate_now().unwrap());
    assert_eq!(grouped.len(), full.len());

    sheet.order("Price", Direction::Desc, 2).unwrap();
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }

    sheet.project_out("Mileage").unwrap();
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }
    sheet.reinstate("Mileage").unwrap();
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }

    // A content change falls back to the full pipeline.
    sheet
        .select(Expr::col("Condition").eq(Expr::lit("Good")))
        .unwrap();
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }
}

#[test]
fn binary_operator_discards_cache() {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.view().unwrap();
    let stored = Spreadsheet::over(used_cars()).save("all").unwrap();
    sheet.union(&stored).unwrap();
    assert_eq!(sheet.view().unwrap().len(), 18);
    {
        let fresh = sheet.evaluate_now().unwrap();
        assert_eq!(*sheet.view().unwrap(), fresh);
    }
}

#[test]
fn rename_discards_cache() {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.group(&["Model"], Direction::Asc).unwrap();
    sheet.view().unwrap();
    sheet.rename("Model", "Make").unwrap();
    let fresh = sheet.evaluate_now().unwrap();
    let v = sheet.view().unwrap();
    assert!(v.visible.contains(&"Make".to_string()));
    assert_eq!(*v, fresh);
}

#[test]
fn fast_path_tiebreak_matches_full_evaluation() {
    // Regression: a grouping+ordering arrangement followed by a
    // level-destroying ordering (Def. 4 case 1) leaves ties in the new
    // key; the fast path must break them by base order (like a full
    // evaluation), not by the previous presentation order.
    let mut sheet = Spreadsheet::over(used_cars());
    sheet.view().unwrap(); // prime cache
    sheet.group(&["Condition"], Direction::Asc).unwrap();
    sheet.order("Price", Direction::Desc, 2).unwrap();
    sheet.view().unwrap(); // presentation now Condition/Price-ordered
                           // destroys the Condition grouping; new finest order = Year only,
                           // which has many ties
    sheet.order("Year", Direction::Asc, 1).unwrap();
    let fresh = sheet.evaluate_now().unwrap();
    assert_eq!(*sheet.view().unwrap(), fresh);
}
