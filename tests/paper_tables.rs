//! Deterministic reproduction of the paper's illustrative tables (I–V):
//! exact row orders and exact computed values.

use sheetmusiq_repro::prelude::*;
use spreadsheet_algebra::fixtures::used_cars;

fn ids(sheet: &Spreadsheet) -> Vec<i64> {
    sheet
        .evaluate_now()
        .unwrap()
        .data
        .column_values("ID")
        .unwrap()
        .into_iter()
        .map(|v| match v {
            Value::Int(i) => i,
            other => panic!("ID must be int, got {other}"),
        })
        .collect()
}

/// Table I's arrangement: grouped by Model DESC then Year ASC, ordered by
/// Price ASC within the finest groups.
fn table1() -> Spreadsheet {
    let mut s = Spreadsheet::over(used_cars());
    s.group(&["Model"], Direction::Desc).unwrap();
    s.group(&["Model", "Year"], Direction::Asc).unwrap();
    s.order("Price", Direction::Asc, 3).unwrap();
    s
}

#[test]
fn table_i_exact_row_order() {
    let s = table1();
    assert_eq!(ids(&s), vec![304, 872, 901, 423, 723, 725, 132, 879, 322]);
}

#[test]
fn table_ii_grouping_by_condition() {
    // Example 1: τ_{Year,Model,Condition},ASC creates a fourth level with
    // relative basis Condition.
    let mut s = table1();
    s.group(&["Year", "Model", "Condition"], Direction::Asc)
        .unwrap();
    assert_eq!(ids(&s), vec![872, 901, 304, 723, 725, 423, 132, 879, 322]);
    assert_eq!(s.state().spec.level_count(), 4);
    assert!(s.state().spec.in_relative_basis("Condition", 4));
    // Price left the finest ordering? No — Price was not grouped, it stays.
    assert_eq!(s.state().spec.finest_order.len(), 1);
}

#[test]
fn table_iii_avg_price_values() {
    let mut s = table1();
    let name = s.aggregate(AggFunc::Avg, "Price", 3).unwrap();
    assert_eq!(name, "Avg_Price");
    let d = s.evaluate_now().unwrap();
    let col = d.data.column_values("Avg_Price").unwrap();
    let expected = [
        15166.666666666666, // Jetta 2005 ×3
        15166.666666666666,
        15166.666666666666,
        17500.0, // Jetta 2006 ×3
        17500.0,
        17500.0,
        13500.0, // Civic 2005
        15500.0, // Civic 2006 ×2
        15500.0,
    ];
    for (v, e) in col.iter().zip(expected) {
        let Value::Float(f) = v else {
            panic!("aggregate must be float")
        };
        assert!((f - e).abs() < 1e-9, "{f} vs {e}");
    }
    // The paper's rendering rounds Jetta-2005 to $15,167.
    let Value::Float(f) = &col[0] else {
        unreachable!()
    };
    assert_eq!(f.round() as i64, 15167);
}

#[test]
fn tables_iv_v_query_modification() {
    let mut s = Spreadsheet::over(used_cars());
    let year = s.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
    s.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
    s.select(Expr::col("Mileage").lt(Expr::lit(80000))).unwrap();
    s.group(&["Condition"], Direction::Asc).unwrap();
    s.order("Price", Direction::Asc, 2).unwrap();
    // Table IV: Excellent group first (872, 901), then Good (304).
    assert_eq!(ids(&s), vec![872, 901, 304]);

    s.replace_selection(year, Expr::col("Year").eq(Expr::lit(2006)))
        .unwrap();
    // Table V: "the specification of model, grouping and ordering remains
    // effective".
    assert_eq!(ids(&s), vec![723, 725, 423]);
    assert_eq!(s.state().spec.level_count(), 2);
}

#[test]
fn table_rendering_matches_paper_shape() {
    use spreadsheet_algebra::render::render_table;
    let mut s = table1();
    s.aggregate(AggFunc::Avg, "Price", 3).unwrap();
    let text = render_table(&s.evaluate_now().unwrap());
    assert!(text.contains("Avg_Price"));
    assert!(text.contains("15166.67"));
    // Jetta block renders before Civic (Model DESC)
    let jetta = text.find("Jetta").unwrap();
    let civic = text.find("Civic").unwrap();
    assert!(jetta < civic);
}

#[test]
fn example_2_ordering_cases() {
    // λ_{Mileage,ASC,3}: further order the finest groups by Mileage.
    let mut s = table1();
    s.order("Mileage", Direction::Asc, 3).unwrap();
    assert_eq!(s.state().spec.level_count(), 3);
    assert_eq!(s.state().spec.finest_order.len(), 2);

    // λ_{Mileage,ASC,2}: destroys the level-3 grouping (relative basis
    // Year).
    let mut s = table1();
    s.order("Mileage", Direction::Asc, 2).unwrap();
    assert_eq!(s.state().spec.level_count(), 2);
    assert!(!s.state().spec.in_relative_basis("Year", 3));
    assert_eq!(s.state().spec.finest_order[0].attribute, "Mileage");
}

#[test]
fn fig2_filter_against_average() {
    // "he can filter out all cars more expensive than the average" —
    // compare Price with Avg_Price (Fig. 2).
    let mut s = table1();
    let avg = s.aggregate(AggFunc::Avg, "Price", 3).unwrap();
    s.select(Expr::col("Price").le(Expr::col(&avg))).unwrap();
    // Cars at or below their (Model, Year) average:
    // Jetta05: 14500, 15000; Jetta06: 17000, 17500; Civic05: 13500;
    // Civic06: 15000.
    assert_eq!(ids(&s), vec![304, 872, 423, 723, 132, 879]);
}
