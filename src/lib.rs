//! # sheetmusiq-repro — facade crate
//!
//! Reproduction of *"A Spreadsheet Algebra for a Direct Data Manipulation
//! Query Interface"* (Liu & Jagadish, ICDE 2009). This crate re-exports
//! the workspace's public surface and hosts the cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! Crate map (see DESIGN.md for the full inventory):
//!
//! * [`algebra`] — the spreadsheet algebra itself (the paper's
//!   contribution): recursively grouped multisets, all operators, query
//!   state, query modification, history;
//! * [`relation`] — the in-memory relational substrate;
//! * [`sql`] — core single-block SQL with the Theorem-1 translator;
//! * [`tpch`] — the study's data generator, views and ten tasks;
//! * [`musiq`] — the SheetMusiq interface model (sessions, contextual
//!   menus, gestures, script language, REPL binary);
//! * [`stats`] — Mann-Whitney / Fisher / descriptive statistics;
//! * [`study`] — the simulated user study and its figure reports.

pub use spreadsheet_algebra as algebra;
pub use ssa_relation as relation;
pub use ssa_sql as sql;
pub use ssa_stats as stats;
pub use ssa_study as study;
pub use ssa_tpch as tpch;

pub use sheetmusiq as musiq;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use sheetmusiq::{ScriptHost, Session};
    pub use spreadsheet_algebra::prelude::*;
    pub use ssa_relation::{Catalog, Schema, Tuple, ValueType};
}
